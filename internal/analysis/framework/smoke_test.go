package framework

import "testing"

func TestSmokeLoadModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := &Loader{ModRoot: root, ModPath: path}
	pkgs, err := l.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loaded %d packages", len(pkgs))
	if len(pkgs) < 20 {
		t.Fatalf("too few packages: %d", len(pkgs))
	}
}
