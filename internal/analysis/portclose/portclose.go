// Package portclose enforces the flowgraph's channel-closure ownership
// contract, the invariant the supervisor's cascading shutdown relies on:
//
//  1. A Block.Run implementation must NOT close its supervisor-owned output
//     channels — the supervisor closes every block's outputs exactly once
//     after the final attempt, so a block-side close is a guaranteed
//     double-close panic under restart.
//  2. A goroutine that produces onto a locally-created stream channel
//     (chan Chunk / chan []complex128) must `defer close` it — or the
//     channel must be closed elsewhere in the creating function — so
//     downstream consumers terminate instead of hanging the graph.
//
// The escape hatch for rule 2, when closure genuinely transfers to another
// owner, is a //mimonet:close-elsewhere annotation.
package portclose

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the portclose analyzer.
var Analyzer = &framework.Analyzer{
	Name: "portclose",
	Doc: "enforce stream-channel closure ownership: blocks must not close supervisor-owned outputs, " +
		"and goroutines sending on locally-made stream channels must close them (//mimonet:close-elsewhere to opt out)",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if framework.IsBlockRun(pass.Info, fd) {
				checkNoOutputClose(pass, fd)
			}
			checkGoroutineProducers(pass, fd)
		}
	}
	return nil
}

// checkNoOutputClose flags close(out[...]) — and close(v) for v := out[i] —
// inside a block Run method.
func checkNoOutputClose(pass *framework.Pass, fd *ast.FuncDecl) {
	outParam := lastParamObj(pass.Info, fd)
	if outParam == nil {
		return
	}
	// Track simple aliases of output ports: v := out[i].
	derived := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			ix, ok := rhs.(*ast.IndexExpr)
			if !ok || framework.ObjOf(pass.Info, ix.X) != outParam {
				continue
			}
			if lobj := framework.ObjOf(pass.Info, as.Lhs[i]); lobj != nil {
				derived[lobj] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(pass.Info, call.Fun, "close") || len(call.Args) != 1 {
			return true
		}
		arg := call.Args[0]
		closesOut := false
		if ix, ok := arg.(*ast.IndexExpr); ok && framework.ObjOf(pass.Info, ix.X) == outParam {
			closesOut = true
		}
		if obj := framework.ObjOf(pass.Info, arg); obj != nil && (obj == outParam || derived[obj]) {
			closesOut = true
		}
		if closesOut {
			pass.Reportf(call.Pos(),
				"block Run closes a supervisor-owned output channel; the supervisor closes outputs after the final attempt, so this double-closes under restart")
		}
		return true
	})
}

// checkGoroutineProducers applies rule 2 inside one function declaration.
func checkGoroutineProducers(pass *framework.Pass, fd *ast.FuncDecl) {
	// Stream channels created in this function.
	made := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass.Info, call.Fun, "make") {
				continue
			}
			tv, ok := pass.Info.Types[rhs]
			if !ok || !framework.IsChunkChan(tv.Type) {
				continue
			}
			if obj := framework.ObjOf(pass.Info, as.Lhs[i]); obj != nil {
				made[obj] = true
			}
		}
		return true
	})
	if len(made) == 0 {
		return
	}
	// Objects closed anywhere in the function (including nested literals
	// and defers): closure ownership is satisfied wherever it lives.
	closed := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(pass.Info, call.Fun, "close") || len(call.Args) != 1 {
			return true
		}
		if obj := framework.ObjOf(pass.Info, call.Args[0]); obj != nil {
			closed[obj] = true
		}
		return true
	})
	// Every goroutine literal sending on a made-here stream channel must
	// have that channel closed somewhere.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			send, ok := m.(*ast.SendStmt)
			if !ok {
				return true
			}
			obj := framework.ObjOf(pass.Info, send.Chan)
			if obj == nil || !made[obj] || closed[obj] {
				return true
			}
			if pass.Exempt(send.Pos(), "close-elsewhere") || pass.Exempt(gs.Pos(), "close-elsewhere") {
				return true
			}
			pass.Reportf(send.Pos(),
				"goroutine sends on stream channel %q created in %s but nothing closes it; downstream receivers will hang on shutdown (defer close it or annotate //mimonet:close-elsewhere)",
				obj.Name(), fd.Name.Name)
			return true
		})
		return true
	})
}

func lastParamObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params.List
	if len(params) == 0 {
		return nil
	}
	last := params[len(params)-1]
	if len(last.Names) == 0 || last.Names[len(last.Names)-1].Name == "_" {
		return nil
	}
	return info.Defs[last.Names[len(last.Names)-1]]
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
