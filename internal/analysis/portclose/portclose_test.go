package portclose_test

import (
	"testing"

	"repro/internal/analysis/framework/atest"
	"repro/internal/analysis/portclose"
)

func TestPortclose(t *testing.T) {
	atest.Run(t, "testdata", portclose.Analyzer, "portclosefix")
}
