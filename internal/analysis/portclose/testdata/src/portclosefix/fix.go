// Package portclosefix is the portclose fixture: self-contained stand-ins
// for flowgraph blocks and stream-producing goroutines.
package portclosefix

import "context"

// Chunk mirrors flowgraph.Chunk structurally.
type Chunk []complex128

// BadCloser closes a supervisor-owned output port.
type BadCloser struct{}

func (b *BadCloser) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	for {
		c, ok := <-in[0]
		if !ok {
			close(out[0]) // want `supervisor-owned output`
			return nil
		}
		out[0] <- c
	}
}

// BadAliasCloser closes an output port through a local alias.
type BadAliasCloser struct{}

func (b *BadAliasCloser) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	o := out[0]
	for c := range in[0] {
		o <- c
	}
	close(o) // want `supervisor-owned output`
	return nil
}

// GoodBlock returns without touching closure — the supervisor's job.
type GoodBlock struct{}

func (g *GoodBlock) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	for c := range in[0] {
		select {
		case out[0] <- c:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// leakyProducer spawns a goroutine that feeds a stream channel and never
// closes it: receivers ranging over ch hang forever.
func leakyProducer() <-chan Chunk {
	ch := make(chan Chunk, 4)
	go func() {
		for i := 0; i < 8; i++ {
			ch <- Chunk{complex(float64(i), 0)} // want `nothing closes it`
		}
	}()
	return ch
}

// goodProducer defers the close inside the producing goroutine.
func goodProducer() <-chan Chunk {
	ch := make(chan Chunk, 4)
	go func() {
		defer close(ch)
		for i := 0; i < 8; i++ {
			ch <- Chunk{complex(float64(i), 0)}
		}
	}()
	return ch
}

// closedByCreator closes in the creating function after synchronization.
func closedByCreator(done chan struct{}) <-chan Chunk {
	ch := make(chan Chunk)
	go func() {
		ch <- Chunk{1}
		done <- struct{}{}
	}()
	go func() {
		<-done
		close(ch)
	}()
	return ch
}

// annotatedHandoff documents an ownership transfer the analyzer can't see.
func annotatedHandoff(sink func(<-chan Chunk)) {
	ch := make(chan Chunk)
	go func() {
		ch <- Chunk{2} //mimonet:close-elsewhere — sink assumes ownership
	}()
	sink(ch)
}

// errChannelOK: non-stream channels are out of scope (result channels are
// routinely left unclosed).
func errChannelOK() <-chan error {
	ch := make(chan error, 1)
	go func() {
		ch <- nil
	}()
	return ch
}
