// Package hotalloc is a performance lint for the two kinds of hot loops in
// this codebase. First, flowgraph block Work paths: a make or append inside
// the chunk-processing loop of a Block.Run method allocates per sample
// batch, which at 20 Msps turns the GC into a rate limiter. Second, any
// function annotated //mimonet:hot — the Monte-Carlo shard loops in
// internal/sim opt in this way, since a per-iteration allocation there
// multiplies across every shard of every sweep point. In both cases, hoist
// the buffer out of the loop and reuse it, or — when the allocation IS the
// semantics, like copying a chunk so downstream owns independent data —
// annotate //mimonet:alloc-ok.
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "flag per-iteration make/append allocations inside flowgraph block Run loops " +
		"and //mimonet:hot-annotated functions (hoist and reuse buffers, or annotate //mimonet:alloc-ok)",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if framework.IsBlockRun(pass.Info, fd) || pass.Exempt(fd.Pos(), "hot") {
				checkHotLoops(pass, fd.Body)
				continue
			}
			// Function literals opt in individually: the annotation sits on
			// the line holding (or directly above) the literal's func token.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok || !pass.Exempt(lit.Pos(), "hot") {
					return true
				}
				checkHotLoops(pass, lit.Body)
				return false // nested literals are covered by the outer check
			})
		}
	}
	return nil
}

// checkHotLoops flags allocation builtins lexically inside any loop in the
// hot body.
func checkHotLoops(pass *framework.Pass, body *ast.BlockStmt) {
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch stmt := m.(type) {
			case *ast.ForStmt:
				inLoop(stmt.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(stmt.Body, depth+1)
				return false
			case *ast.CallExpr:
				if depth == 0 {
					return true
				}
				id, ok := stmt.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if id.Name != "make" && id.Name != "append" {
					return true
				}
				if pass.Exempt(stmt.Pos(), "alloc-ok") {
					return true
				}
				pass.Reportf(stmt.Pos(),
					"%s allocates on every iteration of a hot loop; hoist the buffer out of the loop and reuse it, or annotate //mimonet:alloc-ok", id.Name)
			}
			return true
		})
	}
	inLoop(body, 0)
}
