// Package hotalloc is a performance lint for flowgraph block Work paths: a
// make or append inside the chunk-processing loop of a Block.Run method
// allocates per sample batch, which at 20 Msps turns the GC into a rate
// limiter. Hoist the buffer out of the loop and reuse it, or — when the
// allocation IS the semantics, like copying a chunk so downstream owns
// independent data — annotate //mimonet:alloc-ok.
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "flag per-iteration make/append allocations inside flowgraph block Run loops " +
		"(hoist and reuse buffers, or annotate //mimonet:alloc-ok)",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !framework.IsBlockRun(pass.Info, fd) {
				continue
			}
			checkRunLoops(pass, fd)
		}
	}
	return nil
}

// checkRunLoops flags allocation builtins lexically inside any loop in the
// Run body.
func checkRunLoops(pass *framework.Pass, fd *ast.FuncDecl) {
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch stmt := m.(type) {
			case *ast.ForStmt:
				inLoop(stmt.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(stmt.Body, depth+1)
				return false
			case *ast.CallExpr:
				if depth == 0 {
					return true
				}
				id, ok := stmt.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if id.Name != "make" && id.Name != "append" {
					return true
				}
				if pass.Exempt(stmt.Pos(), "alloc-ok") {
					return true
				}
				pass.Reportf(stmt.Pos(),
					"%s allocates on every iteration of a block Run loop; hoist the buffer out of the loop and reuse it, or annotate //mimonet:alloc-ok", id.Name)
			}
			return true
		})
	}
	inLoop(fd.Body, 0)
}
