// Package hotallocfix is the hotalloc fixture.
package hotallocfix

import "context"

// Chunk mirrors flowgraph.Chunk structurally.
type Chunk []complex128

// AllocEveryChunk allocates inside the Work loop: flagged.
type AllocEveryChunk struct{}

func (b *AllocEveryChunk) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	for c := range in[0] {
		buf := make([]complex128, len(c)) // want `allocates on every iteration`
		copy(buf, c)
		out[0] <- buf
	}
	return nil
}

// AppendEveryChunk grows a slice per chunk: flagged.
type AppendEveryChunk struct{}

func (b *AppendEveryChunk) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	var all Chunk
	for c := range in[0] {
		all = append(all, c...) // want `allocates on every iteration`
	}
	select {
	case out[0] <- all:
	case <-ctx.Done():
	}
	return ctx.Err()
}

// HoistedBuffer reuses one buffer across chunks: no diagnostic (the make is
// outside the loop).
type HoistedBuffer struct{}

func (b *HoistedBuffer) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	buf := make([]complex128, 0, 4096)
	for c := range in[0] {
		buf = buf[:0]
		for _, s := range c {
			buf = appendScaled(buf, s)
		}
		out[0] <- Chunk(buf)
	}
	return nil
}

// OwnershipCopy is the annotated exception: the per-chunk copy is the
// semantics (downstream must own independent data).
type OwnershipCopy struct{}

func (b *OwnershipCopy) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	for c := range in[0] {
		cp := append(Chunk(nil), c...) //mimonet:alloc-ok receiver-owns-chunk copy
		out[0] <- cp
	}
	return nil
}

// appendScaled is a plain helper, not a block Run: allocation lint does not
// apply here.
func appendScaled(dst []complex128, s complex128) []complex128 {
	for i := 0; i < 2; i++ {
		dst = append(dst, s*complex(float64(i), 0))
	}
	return dst
}
