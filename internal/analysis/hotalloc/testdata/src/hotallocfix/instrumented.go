package hotallocfix

// counter mimics the obs nil-safe instrument shape: methods on a nil
// receiver are no-ops, so un-instrumented paths carry the call sites at
// zero cost.
type counter struct{ v int64 }

func (c *counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

type histogram struct{ sum float64 }

func (h *histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.sum += v
}

// instrumentedPump is the edge-pump shape: per-chunk telemetry hooks are
// method calls on pre-registered instruments, not allocation builtins, so
// an instrumented hot loop stays clean.
//
//mimonet:hot
func instrumentedPump(chunks [][]float64, c *counter, h *histogram) float64 {
	acc := 0.0
	for _, chunk := range chunks {
		c.Inc()
		h.Observe(float64(len(chunk)))
		for _, v := range chunk {
			acc += v
		}
	}
	return acc
}

// labelledPerChunk resolves labels inside the loop: flagged — instruments
// must be looked up once, outside the hot path.
//
//mimonet:hot
func labelledPerChunk(chunks [][]float64, c *counter) {
	for range chunks {
		labels := make([]string, 0, 2)  // want `allocates on every iteration`
		labels = append(labels, "edge") // want `allocates on every iteration`
		_ = labels
		c.Inc()
	}
}
