package hotallocfix

// shardLoop opts into the hot-loop lint: per-iteration allocations in a
// Monte-Carlo shard body are flagged like block Run loops.
//
//mimonet:hot
func shardLoop(n int) []complex128 {
	var last []complex128
	for i := 0; i < n; i++ {
		buf := make([]complex128, 64) // want `allocates on every iteration`
		buf[0] = complex(float64(i), 0)
		last = buf
	}
	return last
}

// coldLoop carries no annotation and is not a block Run: its allocations
// are nobody's business.
func coldLoop(n int) []complex128 {
	var last []complex128
	for i := 0; i < n; i++ {
		last = make([]complex128, 64)
	}
	return last
}

// hoistedShard reuses one buffer across iterations: no diagnostic.
//
//mimonet:hot
func hoistedShard(n int) float64 {
	buf := make([]float64, 64)
	acc := 0.0
	for i := 0; i < n; i++ {
		for j := range buf {
			buf[j] = float64(i + j)
		}
		acc += buf[0]
	}
	return acc
}

// escapedShard is hot but its one allocation is the semantics.
//
//mimonet:hot
func escapedShard(n int) [][]float64 {
	var out [][]float64
	for i := 0; i < n; i++ {
		row := make([]float64, 8) //mimonet:alloc-ok caller keeps every row
		out = append(out, row)    //mimonet:alloc-ok result accumulation
	}
	return out
}

// literalShards checks the closure opt-in: only the annotated literal's
// loops are linted.
func literalShards(n int) {
	flagged :=
		//mimonet:hot
		func() {
			for i := 0; i < n; i++ {
				_ = make([]byte, i+1) // want `allocates on every iteration`
			}
		}
	unflagged := func() {
		for i := 0; i < n; i++ {
			_ = make([]byte, i+1)
		}
	}
	flagged()
	unflagged()
}
