package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/framework/atest"
	"repro/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	atest.Run(t, "testdata", hotalloc.Analyzer, "hotallocfix")
}
