package mac

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	prop := func(payload []byte, seq uint16) bool {
		f := &Frame{
			Dest:    Addr{1, 2, 3, 4, 5, 6},
			Src:     Addr{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
			BSSID:   Addr{9, 9, 9, 9, 9, 9},
			Seq:     seq & 0x0FFF,
			Payload: payload,
		}
		psdu, err := f.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(psdu)
		if err != nil {
			return false
		}
		return got.Dest == f.Dest && got.Src == f.Src && got.BSSID == f.BSSID &&
			got.Seq == f.Seq && bytes.Equal(got.Payload, f.Payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameValidation(t *testing.T) {
	f := &Frame{Seq: 0x1000}
	if _, err := f.Encode(); err == nil {
		t.Error("13-bit sequence should fail")
	}
	f2 := &Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f2.Encode(); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := &Frame{Seq: 7, Payload: make([]byte, 64)}
	r.Read(f.Payload)
	psdu, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		c := append([]byte(nil), psdu...)
		c[r.Intn(len(c))] ^= 1 << uint(r.Intn(8))
		if _, err := Decode(c); err == nil {
			t.Fatal("corrupted frame passed FCS")
		}
	}
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Error("tiny PSDU should fail")
	}
	// Valid FCS but short body.
	short, _ := (&Frame{}).Encode()
	truncated := short[:20]
	if _, err := Decode(truncated); err == nil {
		t.Error("truncated frame should fail")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if a.String() != "de:ad:be:ef:00:01" {
		t.Errorf("Addr.String() = %q", a.String())
	}
}

func TestOverhead(t *testing.T) {
	f := &Frame{Payload: make([]byte, 10)}
	psdu, _ := f.Encode()
	if len(psdu) != 10+Overhead() {
		t.Errorf("overhead mismatch: %d vs %d", len(psdu)-10, Overhead())
	}
}
