package mac

import (
	"math/rand"
	"testing"
	"time"
)

func TestBlockAckBitmap(t *testing.T) {
	ack := BlockAck{Start: 100, Bitmap: 0b1011}
	for seq, want := range map[uint16]bool{
		100: true, 101: true, 102: false, 103: true,
		104: false, 164: false, 99: false,
	} {
		if ack.Acked(seq) != want {
			t.Errorf("Acked(%d) = %v, want %v", seq, ack.Acked(seq), want)
		}
	}
}

func TestAckFromResults(t *testing.T) {
	results := []DeaggregateResult{
		{Frame: &Frame{Seq: 10}},
		{Err: errFake},
		{Frame: &Frame{Seq: 12}},
	}
	ack := AckFrom(10, results)
	if !ack.Acked(10) || ack.Acked(11) || !ack.Acked(12) {
		t.Errorf("ack bitmap %b", ack.Bitmap)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestARQSenderValidation(t *testing.T) {
	if _, err := NewARQSender(0); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := NewARQSender(65); err == nil {
		t.Error("window 65 should fail")
	}
}

func TestARQSelectiveRetransmit(t *testing.T) {
	s, err := NewARQSender(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s.Queue([]byte{byte(i)})
	}
	round1 := s.Round()
	if len(round1) != 8 {
		t.Fatalf("round 1 has %d frames", len(round1))
	}
	// Receiver got frames 0,1,2,5,6,7; 3 and 4 lost.
	var results []DeaggregateResult
	for _, f := range round1 {
		if f.Seq == 3 || f.Seq == 4 {
			results = append(results, DeaggregateResult{Err: errFake})
			continue
		}
		results = append(results, DeaggregateResult{Frame: f})
	}
	s.Apply(AckFrom(0, results))
	if s.Delivered != 6 || s.Outstanding() != 2 {
		t.Fatalf("delivered %d, outstanding %d", s.Delivered, s.Outstanding())
	}
	round2 := s.Round()
	if len(round2) != 2 {
		t.Fatalf("round 2 has %d frames", len(round2))
	}
	seqs := map[uint16]bool{round2[0].Seq: true, round2[1].Seq: true}
	if !seqs[3] || !seqs[4] {
		t.Errorf("round 2 retransmits %v, want {3, 4}", seqs)
	}
	s.Apply(AckFrom(0, []DeaggregateResult{{Frame: round2[0]}, {Frame: round2[1]}}))
	if s.Delivered != 8 || s.Outstanding() != 0 {
		t.Errorf("final: delivered %d outstanding %d", s.Delivered, s.Outstanding())
	}
}

func TestARQGivesUpAfterMaxRetries(t *testing.T) {
	s, _ := NewARQSender(4)
	s.MaxRetries = 3
	s.Queue([]byte{1})
	for round := 0; round < 5; round++ {
		s.Round() // never acknowledged
	}
	if s.Dropped != 1 || s.Outstanding() != 0 {
		t.Errorf("dropped %d outstanding %d after retry exhaustion", s.Dropped, s.Outstanding())
	}
}

func TestARQWindowLimitsRound(t *testing.T) {
	s, _ := NewARQSender(4)
	for i := 0; i < 10; i++ {
		s.Queue([]byte{byte(i)})
	}
	if got := len(s.Round()); got != 4 {
		t.Errorf("round size %d, want 4", got)
	}
}

func TestARQEndToEndOverLossyAggregates(t *testing.T) {
	// Drive the full Aggregate → corrupt → Deaggregate → AckFrom loop until
	// everything delivers.
	r := rand.New(rand.NewSource(1))
	s, _ := NewARQSender(16)
	const total = 40
	for i := 0; i < total; i++ {
		p := make([]byte, 100)
		r.Read(p)
		s.Queue(p)
	}
	rounds := 0
	for s.Outstanding() > 0 && rounds < 50 {
		rounds++
		frames := s.Round()
		if len(frames) == 0 {
			break
		}
		psdu, err := Aggregate(frames)
		if err != nil {
			t.Fatal(err)
		}
		// 20% of subframes damaged: flip a byte somewhere random.
		for k := 0; k < len(psdu)/500; k++ {
			psdu[r.Intn(len(psdu))] ^= 0xA5
		}
		s.Apply(AckFrom(frames[0].Seq, Deaggregate(psdu)))
	}
	if s.Delivered+s.Dropped != total {
		t.Fatalf("accounting broken: %d delivered + %d dropped != %d", s.Delivered, s.Dropped, total)
	}
	if s.Delivered < total*9/10 {
		t.Errorf("only %d/%d delivered under 20%% loss", s.Delivered, total)
	}
	t.Logf("delivered %d/%d in %d rounds", s.Delivered, total, rounds)
}

func TestARQRetryDelayBacksOffExponentially(t *testing.T) {
	s, err := NewARQSender(8)
	if err != nil {
		t.Fatal(err)
	}
	s.BackoffBase = time.Millisecond
	s.BackoffMax = 8 * time.Millisecond
	s.Queue([]byte("payload"))
	if d := s.RetryDelay(); d != 0 {
		t.Errorf("delay before any failed round = %v, want 0", d)
	}
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
	}
	for i, w := range want {
		s.Round()
		s.Apply(BlockAck{}) // nothing acknowledged
		if d := s.RetryDelay(); d != w {
			t.Errorf("after %d failed rounds: delay = %v, want %v", i+1, d, w)
		}
	}
	if s.Backoffs != len(want) {
		t.Errorf("Backoffs = %d, want %d", s.Backoffs, len(want))
	}
}

func TestARQRetryDelayResetsOnProgress(t *testing.T) {
	s, err := NewARQSender(8)
	if err != nil {
		t.Fatal(err)
	}
	seq := s.Queue([]byte("a"))
	s.Queue([]byte("b"))
	s.Round()
	s.Apply(BlockAck{}) // all lost
	if s.RetryDelay() == 0 {
		t.Fatal("expected nonzero delay after an all-loss round")
	}
	s.Round()
	ack := BlockAck{Start: seq}
	ack.Bitmap |= 1 // acknowledge the first frame only
	s.Apply(ack)
	if d := s.RetryDelay(); d != 0 {
		t.Errorf("delay after partial progress = %v, want 0", d)
	}
}

func TestARQApplyWithNothingPendingIsNotABackoff(t *testing.T) {
	s, err := NewARQSender(8)
	if err != nil {
		t.Fatal(err)
	}
	s.Apply(BlockAck{})
	if s.Backoffs != 0 || s.RetryDelay() != 0 {
		t.Errorf("idle Apply counted as backoff: %d, delay %v", s.Backoffs, s.RetryDelay())
	}
}

func TestARQPacketIDsStableAcrossRetries(t *testing.T) {
	s, err := NewARQSender(4)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxRetries = 2
	seqA := s.Queue([]byte("a"))
	seqB := s.Queue([]byte("b"))
	idA, idB := s.PacketID(seqA), s.PacketID(seqB)
	if idA == 0 || idB == 0 || idA == idB {
		t.Fatalf("packet ids = %d, %d: want distinct non-zero", idA, idB)
	}

	// A retransmission keeps the same identity.
	s.Round()
	s.Apply(BlockAck{Start: seqA}) // nothing acked
	if got := s.PacketID(seqA); got != idA {
		t.Fatalf("retry changed packet id: %d -> %d", idA, got)
	}

	// Delivery releases the mapping.
	s.Apply(BlockAck{Start: seqA, Bitmap: 1})
	if got := s.PacketID(seqA); got != 0 {
		t.Fatalf("delivered seq still maps to id %d", got)
	}
	// Retry exhaustion releases it too: seqB was transmitted once above, so
	// one more attempt spends its budget and the following round drops it.
	s.Round()
	s.Round()
	if got := s.PacketID(seqB); got != 0 {
		t.Fatalf("dropped seq still maps to id %d", got)
	}
	// The ID space keeps advancing: a later payload never reuses an ID even
	// after the 12-bit sequence space would have wrapped.
	seqC := s.Queue([]byte("c"))
	if got := s.PacketID(seqC); got <= idB {
		t.Fatalf("new packet id %d not monotone after %d", got, idB)
	}
}

func TestARQRetryDelayJitterDeterministicFromSeed(t *testing.T) {
	// Two senders seeded identically must draw identical jittered
	// schedules (chaos campaigns replay from their seed); a third with a
	// different seed must diverge, and every draw must stay inside the
	// ±JitterFrac envelope around the deterministic schedule.
	mk := func(seed int64) *ARQSender {
		s, err := NewARQSender(8)
		if err != nil {
			t.Fatal(err)
		}
		s.BackoffBase = time.Millisecond
		s.BackoffMax = 8 * time.Millisecond
		s.JitterFrac = 0.25
		s.SetJitterSource(rand.New(rand.NewSource(seed)))
		s.Queue([]byte("payload"))
		return s
	}
	det := []time.Duration{1, 2, 4, 8, 8, 8} // ms, the unjittered schedule
	run := func(s *ARQSender) []time.Duration {
		var out []time.Duration
		for range det {
			s.Round()
			s.Apply(BlockAck{})
			out = append(out, s.RetryDelay())
		}
		return out
	}
	a, b, c := run(mk(42)), run(mk(42)), run(mk(43))
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("round %d: same seed diverged: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
		d := det[i] * time.Millisecond
		lo := d - d/4
		hi := d + d/4
		if a[i] < lo || a[i] > hi {
			t.Errorf("round %d: delay %v outside [%v, %v]", i, a[i], lo, hi)
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
}

func TestARQRetryDelayNoJitterWithoutSource(t *testing.T) {
	s, err := NewARQSender(8)
	if err != nil {
		t.Fatal(err)
	}
	s.BackoffBase = time.Millisecond
	s.BackoffMax = 8 * time.Millisecond
	s.JitterFrac = 0.5 // fraction set but no source installed
	s.Queue([]byte("payload"))
	s.Round()
	s.Apply(BlockAck{})
	if d := s.RetryDelay(); d != time.Millisecond {
		t.Errorf("delay = %v, want deterministic 1ms with no jitter source", d)
	}
}
