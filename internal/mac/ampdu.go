package mac

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitutil"
)

// A-MPDU aggregation (IEEE 802.11n §8.6): multiple MPDUs are packed into
// one PSDU, each preceded by a delimiter carrying the MPDU length, a CRC-8
// over the delimiter, and a signature byte. Each MPDU keeps its own FCS, so
// a bit error localized to one subframe costs only that subframe — the
// property experiment E16 measures against sending one monolithic frame.

const (
	delimiterLen = 4
	// delimiterSignature is the ASCII 'N' pattern the standard uses to
	// resynchronize delimiter scanning after a corrupted subframe.
	delimiterSignature = 0x4E
	// padTo aligns each subframe start to a 4-octet boundary.
	padTo = 4
)

// Aggregate packs frames into one A-MPDU PSDU. Each frame is encoded
// (header + FCS) and wrapped in a delimiter; subframes are padded to
// 4-octet alignment as the standard requires.
func Aggregate(frames []*Frame) ([]byte, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("mac: empty aggregate")
	}
	var out []byte
	for i, f := range frames {
		mpdu, err := f.Encode()
		if err != nil {
			return nil, fmt.Errorf("mac: subframe %d: %w", i, err)
		}
		if len(mpdu) > 0x3FFF {
			return nil, fmt.Errorf("mac: subframe %d: MPDU %d exceeds the 14-bit delimiter length", i, len(mpdu))
		}
		delim := make([]byte, delimiterLen)
		// Reserved(2) | length(14) packed little-endian, CRC, signature.
		binary.LittleEndian.PutUint16(delim[0:], uint16(len(mpdu)))
		delim[2] = delimiterCRC(delim[:2])
		delim[3] = delimiterSignature
		out = append(out, delim...)
		out = append(out, mpdu...)
		for len(out)%padTo != 0 {
			out = append(out, 0)
		}
	}
	return out, nil
}

// delimiterCRC computes the CRC-8 over the two delimiter length octets,
// reusing the HT-SIG generator.
func delimiterCRC(b []byte) byte {
	return bitutil.CRC8(bitutil.BytesToBits(b))
}

// DeaggregateResult reports one recovered subframe slot.
type DeaggregateResult struct {
	// Frame is non-nil when the subframe's FCS verified.
	Frame *Frame
	// Err explains a failed slot (delimiter or FCS errors).
	Err error
}

// Deaggregate walks an A-MPDU PSDU and returns one result per delimiter
// found. Corrupted delimiters are skipped by scanning forward for the next
// valid signature+CRC at 4-octet alignment, so one damaged subframe does
// not discard the rest — the error-containment property of aggregation.
func Deaggregate(psdu []byte) []DeaggregateResult {
	var out []DeaggregateResult
	pos := 0
	for pos+delimiterLen <= len(psdu) {
		d := psdu[pos : pos+delimiterLen]
		length := int(binary.LittleEndian.Uint16(d[0:]) & 0x3FFF)
		if d[3] != delimiterSignature || delimiterCRC(d[:2]) != d[2] ||
			length == 0 || pos+delimiterLen+length > len(psdu) {
			// Bad delimiter: resynchronize at the next aligned position.
			if len(out) == 0 || out[len(out)-1].Err == nil {
				out = append(out, DeaggregateResult{Err: fmt.Errorf("mac: bad delimiter at %d", pos)})
			}
			pos += padTo
			continue
		}
		body := psdu[pos+delimiterLen : pos+delimiterLen+length]
		frame, err := Decode(body)
		out = append(out, DeaggregateResult{Frame: frame, Err: err})
		pos += delimiterLen + length
		for pos%padTo != 0 {
			pos++
		}
	}
	return out
}
