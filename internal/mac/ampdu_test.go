package mac

import (
	"bytes"
	"math/rand"
	"testing"
)

func mkFrames(r *rand.Rand, n, payloadLen int) []*Frame {
	frames := make([]*Frame, n)
	for i := range frames {
		p := make([]byte, payloadLen)
		r.Read(p)
		frames[i] = &Frame{Seq: uint16(i), Payload: p}
	}
	return frames
}

func TestAggregateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	frames := mkFrames(r, 5, 120)
	psdu, err := Aggregate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(psdu)%4 != 0 {
		t.Errorf("A-MPDU length %d not 4-octet aligned", len(psdu))
	}
	results := Deaggregate(psdu)
	if len(results) != 5 {
		t.Fatalf("%d subframes recovered, want 5", len(results))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("subframe %d: %v", i, res.Err)
			continue
		}
		if res.Frame.Seq != uint16(i) || !bytes.Equal(res.Frame.Payload, frames[i].Payload) {
			t.Errorf("subframe %d content mismatch", i)
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Error("empty aggregate should fail")
	}
	big := &Frame{Payload: make([]byte, 0x4000)}
	if _, err := Aggregate([]*Frame{big}); err == nil {
		t.Error("oversized subframe should fail")
	}
}

func TestDeaggregateContainsDamage(t *testing.T) {
	// Corrupt one middle subframe's payload: only that slot errors, the
	// rest decode.
	r := rand.New(rand.NewSource(2))
	frames := mkFrames(r, 4, 200)
	psdu, err := Aggregate(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Locate subframe 1's payload region: slot 0 occupies
	// 4 + (24+200+4) rounded up to 4.
	slot := 4 + 228
	slot = (slot + 3) / 4 * 4
	psdu[slot+30] ^= 0xFF // inside subframe 1's body
	results := Deaggregate(psdu)
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	for i, res := range results {
		if i == 1 {
			if res.Err == nil {
				t.Error("corrupted subframe 1 passed FCS")
			}
			continue
		}
		if res.Err != nil {
			t.Errorf("undamaged subframe %d failed: %v", i, res.Err)
		}
	}
}

func TestDeaggregateResyncAfterDelimiterDamage(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	frames := mkFrames(r, 3, 64)
	psdu, err := Aggregate(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Destroy the first delimiter completely.
	psdu[0], psdu[1], psdu[2], psdu[3] = 0xFF, 0xFF, 0xFF, 0xFF
	results := Deaggregate(psdu)
	ok := 0
	for _, res := range results {
		if res.Err == nil {
			ok++
		}
	}
	if ok < 2 {
		t.Errorf("resync recovered %d subframes, want the 2 undamaged ones", ok)
	}
}

func TestDeaggregateGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	junk := make([]byte, 500)
	r.Read(junk)
	results := Deaggregate(junk)
	for _, res := range results {
		if res.Err == nil {
			t.Fatal("pure garbage produced a valid subframe")
		}
	}
}
