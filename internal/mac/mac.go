// Package mac implements the minimal MAC-layer framing the paper's
// experiments need: data MPDUs with addressing, sequence numbers and a
// CRC-32 frame check sequence, so packet error rate is measured the way the
// paper measures it — by FCS verification on reassembled frames.
package mac

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitutil"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// header layout: FrameControl(2) Duration(2) Addr1(6) Addr2(6) Addr3(6)
// SeqCtl(2) = 24 octets, followed by the payload and the 4-octet FCS.
const (
	headerLen = 24
	fcsLen    = 4
	// MaxPayload keeps the PSDU within the HT-SIG 16-bit length field.
	MaxPayload = 65535 - headerLen - fcsLen
)

// frameControl value for a Data frame (type 10, subtype 0000, protocol 0).
const frameControlData = 0x0008

// Frame is a parsed data MPDU.
type Frame struct {
	Dest, Src, BSSID Addr
	Seq              uint16 // 12-bit sequence number
	Payload          []byte
}

// Encode serializes the frame with FCS appended; the result is a PSDU ready
// for phy.Transmitter.
func (f *Frame) Encode() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("mac: payload %d exceeds %d", len(f.Payload), MaxPayload)
	}
	if f.Seq > 0x0FFF {
		return nil, fmt.Errorf("mac: sequence number %d exceeds 12 bits", f.Seq)
	}
	buf := make([]byte, headerLen+len(f.Payload))
	binary.LittleEndian.PutUint16(buf[0:], frameControlData)
	binary.LittleEndian.PutUint16(buf[2:], 0) // duration
	copy(buf[4:], f.Dest[:])
	copy(buf[10:], f.Src[:])
	copy(buf[16:], f.BSSID[:])
	binary.LittleEndian.PutUint16(buf[22:], f.Seq<<4)
	copy(buf[headerLen:], f.Payload)
	return bitutil.AppendFCS(buf), nil
}

// Decode parses a PSDU, verifying the FCS. It returns an error for frames
// that fail the check — the PER counter's definition of a packet error.
func Decode(psdu []byte) (*Frame, error) {
	body, ok := bitutil.CheckFCS(psdu)
	if !ok {
		return nil, fmt.Errorf("mac: FCS check failed")
	}
	if len(body) < headerLen {
		return nil, fmt.Errorf("mac: frame body %d shorter than header", len(body))
	}
	fc := binary.LittleEndian.Uint16(body[0:])
	if fc != frameControlData {
		return nil, fmt.Errorf("mac: unsupported frame control %#06x", fc)
	}
	f := &Frame{
		Seq:     binary.LittleEndian.Uint16(body[22:]) >> 4,
		Payload: append([]byte(nil), body[headerLen:]...),
	}
	copy(f.Dest[:], body[4:])
	copy(f.Src[:], body[10:])
	copy(f.BSSID[:], body[16:])
	return f, nil
}

// Overhead returns the MAC framing overhead in octets.
func Overhead() int { return headerLen + fcsLen }
