package mac

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/obs"
)

// Selective-repeat ARQ in the style of 802.11n Block Ack: the sender
// aggregates up to a window of MPDUs per round (an A-MPDU), the receiver
// responds with a compressed bitmap acknowledging the subframes whose FCS
// verified, and only the missing ones are retransmitted. Combined with
// package-level Aggregate/Deaggregate this is the network-level payoff of
// per-subframe FCS.

// BlockAck is a compressed acknowledgement: sequence numbers in
// [Start, Start+64) are acknowledged by bits of the bitmap.
type BlockAck struct {
	Start  uint16
	Bitmap uint64
}

// Acked reports whether seq is acknowledged.
func (b BlockAck) Acked(seq uint16) bool {
	off := int(seq-b.Start) & 0x0FFF
	if off >= 64 {
		return false
	}
	return b.Bitmap&(1<<uint(off)) != 0
}

// AckFrom builds a BlockAck from deaggregated results, anchored at start.
func AckFrom(start uint16, results []DeaggregateResult) BlockAck {
	ack := BlockAck{Start: start}
	for _, res := range results {
		if res.Err != nil || res.Frame == nil {
			continue
		}
		off := int(res.Frame.Seq-start) & 0x0FFF
		if off < 64 {
			ack.Bitmap |= 1 << uint(off)
		}
	}
	return ack
}

// ARQSender manages a selective-repeat transmit window over payloads.
// Not safe for concurrent use.
type ARQSender struct {
	window  int
	nextSeq uint16
	// pending maps sequence → payload awaiting acknowledgement.
	pending map[uint16][]byte
	// retries tracks transmissions per sequence for the give-up policy.
	retries    map[uint16]int
	MaxRetries int
	// packetIDs maps sequence → the globally unique TX-assigned packet ID,
	// the correlation key stamped into radio frames and flight dumps. Unlike
	// the 12-bit sequence it never wraps, so a retransmission keeps the same
	// identity across rounds.
	packetIDs    map[uint16]uint64
	nextPacketID uint64
	// BackoffBase and BackoffMax shape RetryDelay's exponential backoff:
	// the delay doubles per consecutive all-loss round, capped at
	// BackoffMax. Defaults 1ms and 64ms.
	BackoffBase, BackoffMax time.Duration
	// JitterFrac spreads each non-zero RetryDelay uniformly over
	// [d·(1-f), d·(1+f)] using the seeded source from SetJitterSource, so
	// concurrent sessions sharing a congested link do not synchronize
	// their retransmission rounds. Zero (or no source) keeps the
	// deterministic schedule.
	JitterFrac float64
	// jitterRng is the explicitly seeded stream behind JitterFrac; the
	// montecarlo seeded-rand discipline, never the global source.
	jitterRng *rand.Rand
	// Delivered and Dropped count terminal payload outcomes.
	Delivered, Dropped int
	// Backoffs counts rounds in which pending frames went entirely
	// unacknowledged (the link looked dead).
	Backoffs int
	// failRounds is the current consecutive all-loss round streak.
	failRounds int
	// Exposition counters mirroring the tallies above (nil until Instrument).
	cRetries   *obs.Counter
	cBackoffs  *obs.Counter
	cDelivered *obs.Counter
	cDropped   *obs.Counter
}

// NewARQSender returns a sender with a window of up to `window` outstanding
// MPDUs per round (≤ 64, the Block Ack bitmap size).
func NewARQSender(window int) (*ARQSender, error) {
	if window < 1 || window > 64 {
		return nil, fmt.Errorf("mac: ARQ window %d outside [1, 64]", window)
	}
	return &ARQSender{
		window:      window,
		pending:     make(map[uint16][]byte),
		retries:     make(map[uint16]int),
		packetIDs:   make(map[uint16]uint64),
		MaxRetries:  7,
		BackoffBase: time.Millisecond,
		BackoffMax:  64 * time.Millisecond,
	}, nil
}

// Instrument registers the sender's ARQ counters in reg. A nil registry
// leaves the sender un-instrumented (counters stay no-ops).
func (s *ARQSender) Instrument(reg *obs.Registry) {
	s.cRetries = reg.Counter("mimonet_arq_retries_total",
		"MPDU retransmissions (transmissions beyond each frame's first)")
	s.cBackoffs = reg.Counter("mimonet_arq_backoffs_total",
		"rounds in which pending frames went entirely unacknowledged")
	s.cDelivered = reg.Counter("mimonet_arq_delivered_total",
		"payloads acknowledged and released from the window")
	s.cDropped = reg.Counter("mimonet_arq_dropped_total",
		"payloads dropped after exhausting the retry budget")
}

// Queue accepts a payload for reliable delivery and returns its assigned
// sequence number.
func (s *ARQSender) Queue(payload []byte) uint16 {
	seq := s.nextSeq
	s.nextSeq = (s.nextSeq + 1) & 0x0FFF
	s.pending[seq] = payload
	s.nextPacketID++
	s.packetIDs[seq] = s.nextPacketID
	return seq
}

// PacketID returns the TX-assigned packet ID of a pending sequence (0 once
// the payload left the window, or for an unknown sequence). Drivers stamp
// this into the radio frames carrying the MPDU (WriteBurstID) so RX-side
// telemetry correlates with this sender's record.
func (s *ARQSender) PacketID(seq uint16) uint64 { return s.packetIDs[seq] }

// Outstanding returns the number of unacknowledged payloads.
func (s *ARQSender) Outstanding() int { return len(s.pending) }

// Round returns the frames to transmit this round: the oldest pending
// sequences up to the window, in order. It also records the attempt against
// each frame's retry budget, dropping frames that exhausted it.
func (s *ARQSender) Round() []*Frame {
	seqs := make([]int, 0, len(s.pending))
	for seq := range s.pending {
		seqs = append(seqs, int(seq))
	}
	// Order by age: sequence distance from the oldest modulo 4096. With
	// windows ≤ 64 and in-order Queue calls, plain numeric order with
	// wraparound handling suffices.
	sort.Ints(seqs)
	frames := make([]*Frame, 0, s.window)
	for _, si := range seqs {
		if len(frames) == s.window {
			break
		}
		seq := uint16(si)
		if s.retries[seq] >= s.MaxRetries {
			delete(s.pending, seq)
			delete(s.retries, seq)
			delete(s.packetIDs, seq)
			s.Dropped++
			s.cDropped.Inc()
			continue
		}
		if s.retries[seq] > 0 {
			s.cRetries.Inc()
		}
		s.retries[seq]++
		frames = append(frames, &Frame{Seq: seq, Payload: s.pending[seq]})
	}
	return frames
}

// Apply consumes a BlockAck, releasing acknowledged payloads. It also feeds
// the backoff state: a round where frames were pending and none were
// acknowledged extends the consecutive-failure streak that RetryDelay turns
// into an exponential wait; any acknowledgement resets it.
func (s *ARQSender) Apply(ack BlockAck) {
	hadPending := len(s.pending) > 0
	acked := 0
	for seq := range s.pending {
		if ack.Acked(seq) {
			delete(s.pending, seq)
			delete(s.retries, seq)
			delete(s.packetIDs, seq)
			s.Delivered++
			s.cDelivered.Inc()
			acked++
		}
	}
	if !hadPending {
		return
	}
	if acked == 0 {
		s.failRounds++
		s.Backoffs++
		s.cBackoffs.Inc()
	} else {
		s.failRounds = 0
	}
}

// SetJitterSource installs the seeded random stream JitterFrac draws from.
// Nil disables jitter. Sessions derive their stream from the campaign seed
// (montecarlo.ShardSeed) so chaos runs replay bit-identically.
func (s *ARQSender) SetJitterSource(rng *rand.Rand) { s.jitterRng = rng }

// RetryDelay returns how long the driver should wait before the next Round:
// zero while the link is delivering, then BackoffBase doubling per
// consecutive all-loss round up to BackoffMax, spread by ±JitterFrac when a
// jitter source is installed. The exponential keeps a retransmit storm from
// hammering a link that is down; the jitter keeps concurrent sessions from
// hammering it in lockstep.
func (s *ARQSender) RetryDelay() time.Duration {
	if s.failRounds == 0 {
		return 0
	}
	base, max := s.BackoffBase, s.BackoffMax
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	d := base
	for i := 1; i < s.failRounds; i++ {
		if d >= max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	if s.jitterRng != nil && s.JitterFrac > 0 {
		f := s.JitterFrac
		if f > 1 {
			f = 1
		}
		// Uniform in [d·(1-f), d·(1+f)], floored at 1ns so a backoff round
		// never degenerates into a busy loop.
		d += time.Duration((2*s.jitterRng.Float64() - 1) * f * float64(d))
		if d < 1 {
			d = 1
		}
	}
	return d
}
