package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/channel"
)

func TestLinkCleanTransfer(t *testing.T) {
	link, err := NewLink(LinkConfig{
		MCS:     11,
		Channel: channel.Config{Model: channel.Identity, SNRdB: 30, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("mimonet"), 40)
	rep, err := link.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("transfer failed: sync=%v phy=%v bitErrs=%d", rep.SyncError, rep.PHYError, rep.BitErrors)
	}
	if !bytes.Equal(rep.Received, payload) {
		t.Error("payload mismatch")
	}
	if rep.BitErrors != 0 {
		t.Errorf("bit errors %d on clean channel", rep.BitErrors)
	}
	if math.Abs(rep.SNRdB-30) > 3 {
		t.Errorf("SNR estimate %g, want ≈ 30", rep.SNRdB)
	}
}

func TestLinkSequenceAdvances(t *testing.T) {
	link, err := NewLink(LinkConfig{
		MCS:     8,
		Channel: channel.Config{Model: channel.Identity, SNRdB: 30, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := link.Send([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := link.Send([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seq == r2.Seq {
		t.Error("sequence number did not advance")
	}
	if !r1.OK || !r2.OK {
		t.Error("transfers failed")
	}
}

func TestLinkFailsAtVeryLowSNR(t *testing.T) {
	link, err := NewLink(LinkConfig{
		MCS:     15, // 64-QAM 5/6: hopeless at -5 dB
		Channel: channel.Config{Model: channel.FlatRayleigh, SNRdB: -5, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for i := 0; i < 5; i++ {
		rep, err := link.Send(make([]byte, 500))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			fails++
		}
	}
	if fails == 0 {
		t.Error("MCS15 at -5 dB should fail at least sometimes")
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(LinkConfig{MCS: 99}); err == nil {
		t.Error("bad MCS should fail")
	}
	if _, err := NewLink(LinkConfig{MCS: 0, Detector: "nope"}); err == nil {
		t.Error("bad detector should fail")
	}
	link, err := NewLink(LinkConfig{MCS: 0, Channel: channel.Config{Model: channel.Identity, SNRdB: 20, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.Send(nil); err == nil {
		t.Error("empty payload should fail")
	}
}

func TestLinkExtraRXAntenna(t *testing.T) {
	link, err := NewLink(LinkConfig{
		MCS:           9,
		NumRXAntennas: 3,
		Channel:       channel.Config{Model: channel.FlatRayleigh, SNRdB: 25, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := link.Send(make([]byte, 200))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("2x3 transfer failed: %v", rep.PHYError)
	}
}
