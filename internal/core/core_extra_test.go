package core

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/ofdm"
)

func TestLinkShortGI(t *testing.T) {
	link, err := NewLink(LinkConfig{
		MCS:     10,
		ShortGI: true,
		Channel: channel.Config{Model: channel.TGnB, SNRdB: 30, Seed: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 800)
	rep, err := link.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("short-GI link transfer failed: %v", rep.PHYError)
	}
}

func TestLinkSICDetector(t *testing.T) {
	link, err := NewLink(LinkConfig{
		MCS:      12,
		Detector: "sic",
		Channel:  channel.Config{Model: channel.FlatRayleigh, SNRdB: 32, Seed: 22},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	const packets = 8
	for i := 0; i < packets; i++ {
		rep, err := link.Send(make([]byte, 300))
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK {
			ok++
		}
	}
	// Block fading redraws per packet; the occasional deep fade is
	// physics, a majority must still decode at 32 dB.
	if ok < packets*3/4 {
		t.Errorf("SIC link delivered only %d/%d at 32 dB", ok, packets)
	}
}

func TestLinkSyncFailureReported(t *testing.T) {
	// At absurdly low SNR the packet detector never fires; the report must
	// say so rather than erroring out.
	link, err := NewLink(LinkConfig{
		MCS:     0,
		Channel: channel.Config{Model: channel.Identity, SNRdB: -25, Seed: 23},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := link.Send(make([]byte, 50))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("decode at -25 dB cannot succeed")
	}
	if !rep.SyncError {
		t.Error("sync failure not flagged")
	}
	if rep.BitErrors != rep.PayloadBits {
		t.Errorf("lost packet should count all %d bits errored, got %d", rep.PayloadBits, rep.BitErrors)
	}
}

func TestLinkDopplerWithTracking(t *testing.T) {
	link, err := NewLink(LinkConfig{
		MCS: 9,
		Channel: channel.Config{Model: channel.FlatRayleigh, SNRdB: 30, Seed: 24,
			DopplerHz: 400, SampleRate: ofdm.SampleRate},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 5; i++ {
		rep, err := link.Send(make([]byte, 500))
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK {
			ok++
		}
	}
	if ok < 3 {
		t.Errorf("only %d/5 packets over a 400 Hz Doppler channel", ok)
	}
}
