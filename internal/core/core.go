// Package core ties the MIMONet transceiver together into a link-level
// simulator: a Link couples a phy.Transmitter, a channel.Channel and a
// phy.Receiver and moves MAC frames across them, reporting the per-packet
// diagnostics (FCS outcome, bit errors, SNR estimate, sync state) that the
// paper's evaluation is built from.
package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/phy"
)

// LinkConfig assembles a link.
type LinkConfig struct {
	// MCS selects the modulation and coding scheme (0-31); the transmit
	// antenna count follows from it.
	MCS int
	// NumRXAntennas is the receiver antenna count; defaults to N_SS.
	NumRXAntennas int
	// Detector selects the MIMO detector ("zf", "mmse", "sic", "ml");
	// default "mmse".
	Detector string
	// Channel configures the propagation model and impairments. NumTX and
	// NumRX are filled in from the MCS and NumRXAntennas.
	Channel channel.Config
	// DisablePhaseTracking, SmoothingWindow and CPMLSync forward to
	// phy.RxConfig.
	DisablePhaseTracking bool
	SmoothingWindow      int
	CPMLSync             bool
	// ScramblerSeed forwards to phy.TxConfig (0 selects all-ones).
	ScramblerSeed byte
	// ShortGI selects the 400 ns guard interval.
	ShortGI bool
}

// TransferReport describes one frame's journey across the link.
type TransferReport struct {
	// OK is true when the frame decoded with a valid FCS and matching
	// sequence number.
	OK bool
	// Received is the recovered payload (nil if the PHY or FCS failed).
	Received []byte
	// SyncError, PHYError record where decoding failed, if it did.
	SyncError bool
	PHYError  error
	// BitErrors counts payload bit errors against the transmitted frame
	// (PSDU-level, counted even when the FCS fails, 8·len(payload) when
	// nothing decoded).
	BitErrors   int
	PayloadBits int
	// SNRdB is the receiver's L-LTF SNR estimate (NaN-free; 0 when sync
	// failed).
	SNRdB float64
	// CFO is the corrected frequency offset in rad/sample.
	CFO float64
	// Seq is the MAC sequence number used.
	Seq uint16
}

// Link is a single-hop MIMONet link. Not safe for concurrent use.
type Link struct {
	cfg LinkConfig
	tx  *phy.Transmitter
	rx  *phy.Receiver
	ch  *channel.Channel
	seq uint16
	src mac.Addr
	dst mac.Addr
}

// NewLink validates the configuration and builds the link.
func NewLink(cfg LinkConfig) (*Link, error) {
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: cfg.MCS, ScramblerSeed: cfg.ScramblerSeed, Smoothing: cfg.SmoothingWindow > 1, ShortGI: cfg.ShortGI})
	if err != nil {
		return nil, err
	}
	nrx := cfg.NumRXAntennas
	if nrx == 0 {
		nrx = tx.NumChains()
	}
	rx, err := phy.NewReceiver(phy.RxConfig{
		NumAntennas:          nrx,
		Detector:             cfg.Detector,
		DisablePhaseTracking: cfg.DisablePhaseTracking,
		SmoothingWindow:      cfg.SmoothingWindow,
		CPMLSync:             cfg.CPMLSync,
	})
	if err != nil {
		return nil, err
	}
	chCfg := cfg.Channel
	chCfg.NumTX = tx.NumChains()
	chCfg.NumRX = nrx
	if chCfg.TimingOffset == 0 {
		chCfg.TimingOffset = 200
	}
	if chCfg.TrailingSilence == 0 {
		chCfg.TrailingSilence = 100
	}
	ch, err := channel.New(chCfg)
	if err != nil {
		return nil, err
	}
	return &Link{
		cfg: cfg,
		tx:  tx,
		rx:  rx,
		ch:  ch,
		src: mac.Addr{0x02, 0x4d, 0x4e, 0x00, 0x00, 0x01},
		dst: mac.Addr{0x02, 0x4d, 0x4e, 0x00, 0x00, 0x02},
	}, nil
}

// MCS returns the link's modulation and coding scheme.
func (l *Link) MCS() phy.MCS { return l.tx.MCS() }

// Send carries one payload across the link and reports the outcome.
func (l *Link) Send(payload []byte) (*TransferReport, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: empty payload")
	}
	frame := &mac.Frame{Dest: l.dst, Src: l.src, BSSID: l.dst, Seq: l.seq, Payload: payload}
	rep := &TransferReport{Seq: l.seq, PayloadBits: 8 * len(payload)}
	l.seq = (l.seq + 1) & 0x0FFF

	psdu, err := frame.Encode()
	if err != nil {
		return nil, err
	}
	burst, err := l.tx.Transmit(psdu)
	if err != nil {
		return nil, err
	}
	rxs, err := l.ch.Apply(burst)
	if err != nil {
		return nil, err
	}
	res, err := l.rx.Receive(rxs)
	if err != nil {
		rep.SyncError = res == nil
		rep.PHYError = err
		rep.BitErrors = rep.PayloadBits
		if res != nil {
			rep.SNRdB = res.SNRdB
			rep.CFO = res.CFO
		}
		return rep, nil
	}
	rep.SNRdB = res.SNRdB
	rep.CFO = res.CFO
	// Bit errors against the transmitted PSDU (payload region only).
	rep.BitErrors = payloadBitErrors(psdu, res.PSDU, len(payload))
	got, err := mac.Decode(res.PSDU)
	if err != nil {
		return rep, nil // FCS failure: packet error, already counted
	}
	rep.Received = got.Payload
	rep.OK = got.Seq == frame.Seq && string(got.Payload) == string(payload)
	return rep, nil
}

// payloadBitErrors compares the payload region of the transmitted and
// received PSDUs.
func payloadBitErrors(txPSDU, rxPSDU []byte, payloadLen int) int {
	const hdr = 24 // mac header precedes the payload
	errs := 0
	for i := 0; i < payloadLen; i++ {
		txIdx := hdr + i
		var rxByte byte
		if txIdx < len(rxPSDU) {
			rxByte = rxPSDU[txIdx]
		}
		x := txPSDU[txIdx] ^ rxByte
		for ; x != 0; x &= x - 1 {
			errs++
		}
	}
	return errs
}
