package obs

import (
	"math"
	"testing"
)

func TestNilRegistryHandsOutNilInstruments(t *testing.T) {
	var r *Registry
	if c := r.Counter("x", "h"); c != nil {
		t.Fatalf("nil registry Counter = %v, want nil", c)
	}
	if g := r.Gauge("x", "h"); g != nil {
		t.Fatalf("nil registry Gauge = %v, want nil", g)
	}
	if h := r.Histogram("x", "h", []float64{1}); h != nil {
		t.Fatalf("nil registry Histogram = %v, want nil", h)
	}
	if s := r.Gather(); s != nil {
		t.Fatalf("nil registry Gather = %v, want nil", s)
	}
}

func TestNilInstrumentsAreAllocationFreeNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(2)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("nil instrument ops allocated %v/op, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should read as zero")
	}
}

func TestLiveHotPathIsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", []float64{0.1, 1, 10})
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(4)
		g.Add(-1)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("live instrument ops allocated %v/op, want 0", allocs)
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", Label{Key: "code", Value: "200"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) must return the same instrument.
	if c2 := r.Counter("reqs_total", "requests", Label{Key: "code", Value: "200"}); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels get their own child.
	other := r.Counter("reqs_total", "requests", Label{Key: "code", Value: "500"})
	if other == c {
		t.Fatal("distinct label sets shared an instrument")
	}

	g := r.Gauge("temp", "t")
	g.Set(20)
	g.Add(2.5)
	if got := g.Value(); got != 22.5 {
		t.Fatalf("gauge = %g, want 22.5", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 105 {
		t.Fatalf("sum = %g, want 105", h.Sum())
	}
	r := NewRegistry()
	rh := r.Histogram("lat", "l", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		rh.Observe(v)
	}
	fams := r.Gather()
	if len(fams) != 1 || len(fams[0].Points) != 1 {
		t.Fatalf("gather shape: %+v", fams)
	}
	p := fams[0].Points[0]
	wantCum := []int64{1, 2, 3, 4}
	if len(p.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(p.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if p.Buckets[i].Count != want {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, p.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(p.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bound = %g, want +Inf", p.Buckets[3].UpperBound)
	}
	if p.Count != 4 {
		t.Fatalf("point count = %d, want 4", p.Count)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "h")
}

func TestUnsortedHistogramBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 4, 4)
	want := []float64{1e-6, 4e-6, 1.6e-5, 6.4e-5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestGatherSortedByNameAndLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "h")
	r.Counter("a_total", "h", Label{Key: "k", Value: "2"})
	r.Counter("a_total", "h", Label{Key: "k", Value: "1"})
	fams := r.Gather()
	if len(fams) != 2 || fams[0].Name != "a_total" || fams[1].Name != "z_total" {
		t.Fatalf("family order: %v, %v", fams[0].Name, fams[1].Name)
	}
	pts := fams[0].Points
	if len(pts) != 2 || pts[0].Labels[0].Value != "1" || pts[1].Labels[0].Value != "2" {
		t.Fatalf("point order: %+v", pts)
	}
}
