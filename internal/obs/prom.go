package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): per family a # HELP and # TYPE line, then one sample per
// point; histograms expand into cumulative _bucket{le=...} samples plus
// _sum and _count. Families and points come out of Gather pre-sorted, so
// the output is byte-stable between metric updates.
func WriteProm(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Gather() {
		if _, err := fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.Name, escapeHelp(f.Help), f.Name, f.Kind); err != nil {
			return err
		}
		for _, p := range f.Points {
			switch f.Kind {
			case KindHistogram:
				for _, b := range p.Buckets {
					le := formatFloat(b.UpperBound)
					if math.IsInf(b.UpperBound, 1) {
						le = "+Inf"
					}
					labels := promLabels(p.Labels, Label{Key: "le", Value: le})
					if _, err := fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name, labels, b.Count); err != nil {
						return err
					}
				}
				labels := promLabels(p.Labels)
				if _, err := fmt.Fprintf(bw, "%s_sum%s %s\n%s_count%s %d\n",
					f.Name, labels, formatFloat(p.Sum), f.Name, labels, p.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(bw, "%s%s %s\n", f.Name, promLabels(p.Labels), formatFloat(p.Value)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// promLabels renders a label set (plus any extras) as {k="v",...}, or the
// empty string when there are none. Extras are appended after the sorted
// base labels, matching the common le-last convention.
func promLabels(base []Label, extra ...Label) string {
	if len(base)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, l := range base {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
		n++
	}
	for _, l := range extra {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
		n++
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

var (
	helpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)( [0-9]+)?$`)
)

// ValidateExposition strictly checks a Prometheus text stream: every line
// must be a well-formed HELP/TYPE comment or sample, sample values must
// parse, every sample's family must have a preceding TYPE line, and
// histogram families must close with _sum and _count. It returns the set of
// family names seen, so callers can additionally require specific series
// (the CI obs gate does).
func ValidateExposition(r io.Reader) (map[string]Kind, error) {
	families := make(map[string]Kind)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeLine.FindStringSubmatch(line); m != nil {
				families[m[1]] = Kind(m[2])
				continue
			}
			if helpLine.MatchString(line) {
				continue
			}
			return families, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return families, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, value := m[1], m[5]
		switch value {
		case "+Inf", "-Inf", "NaN":
		default:
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return families, fmt.Errorf("line %d: bad sample value %q: %w", lineNo, value, err)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && families[trimmed] == KindHistogram {
				base = trimmed
				break
			}
		}
		if _, ok := families[base]; !ok {
			return families, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return families, err
	}
	return families, nil
}
