package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): per family a # HELP and # TYPE line, then one sample per
// point; histograms expand into cumulative _bucket{le=...} samples plus
// _sum and _count. Families and points come out of Gather pre-sorted, so
// the output is byte-stable between metric updates.
func WriteProm(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Gather() {
		if _, err := fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.Name, escapeHelp(f.Help), f.Name, f.Kind); err != nil {
			return err
		}
		for _, p := range f.Points {
			switch f.Kind {
			case KindHistogram:
				for _, b := range p.Buckets {
					le := formatFloat(b.UpperBound)
					if math.IsInf(b.UpperBound, 1) {
						le = "+Inf"
					}
					labels := promLabels(p.Labels, Label{Key: "le", Value: le})
					if _, err := fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name, labels, b.Count); err != nil {
						return err
					}
				}
				labels := promLabels(p.Labels)
				if _, err := fmt.Fprintf(bw, "%s_sum%s %s\n%s_count%s %d\n",
					f.Name, labels, formatFloat(p.Sum), f.Name, labels, p.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(bw, "%s%s %s\n", f.Name, promLabels(p.Labels), formatFloat(p.Value)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// promLabels renders a label set (plus any extras) as {k="v",...}, or the
// empty string when there are none. Extras are appended after the sorted
// base labels, matching the common le-last convention.
func promLabels(base []Label, extra ...Label) string {
	if len(base)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, l := range base {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
		n++
	}
	for _, l := range extra {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
		n++
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

var (
	helpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)( [0-9]+)?$`)
)

// ValidateExposition strictly checks a Prometheus text stream: every line
// must be a well-formed HELP/TYPE comment or sample, sample values must
// parse, every sample's family must have a preceding TYPE line, and
// histogram families must close with _sum and _count. It returns the set of
// family names seen, so callers can additionally require specific series
// (the CI obs gate does).
func ValidateExposition(r io.Reader) (map[string]Kind, error) {
	families := make(map[string]Kind)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeLine.FindStringSubmatch(line); m != nil {
				families[m[1]] = Kind(m[2])
				continue
			}
			if helpLine.MatchString(line) {
				continue
			}
			return families, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return families, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, value := m[1], m[5]
		switch value {
		case "+Inf", "-Inf", "NaN":
		default:
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return families, fmt.Errorf("line %d: bad sample value %q: %w", lineNo, value, err)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && families[trimmed] == KindHistogram {
				base = trimmed
				break
			}
		}
		if _, ok := families[base]; !ok {
			return families, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return families, err
	}
	return families, nil
}

var labelNameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// ValidateSeries enforces series-level hygiene on a Prometheus text stream,
// beyond the line-shape checks ValidateExposition makes:
//
//   - every label name must be legal ([a-zA-Z_][a-zA-Z0-9_]*) and must not
//     use the double-underscore prefix Prometheus reserves for internal
//     labels (__name__ and friends);
//   - no sample may repeat a label name;
//   - no two samples may share a name and label set — a duplicate series is
//     how a scrape silently loses data, since the last sample wins.
//
// Comments and blank lines pass through; malformed samples fail, so the
// check composes with ValidateExposition on the same buffered stream.
func ValidateSeries(r io.Reader) error {
	seen := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name := m[1]
		labels, err := parsePromLabels(m[2])
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		ids := make([]string, 0, len(labels))
		dup := make(map[string]bool, len(labels))
		for _, l := range labels {
			if !labelNameRe.MatchString(l.Key) {
				return fmt.Errorf("line %d: illegal label name %q", lineNo, l.Key)
			}
			if strings.HasPrefix(l.Key, "__") {
				return fmt.Errorf("line %d: label %q uses the reserved __ prefix", lineNo, l.Key)
			}
			if dup[l.Key] {
				return fmt.Errorf("line %d: label %q repeated within one sample", lineNo, l.Key)
			}
			dup[l.Key] = true
			ids = append(ids, l.Key+"="+strconv.Quote(l.Value))
		}
		sort.Strings(ids)
		series := name + "{" + strings.Join(ids, ",") + "}"
		if first, ok := seen[series]; ok {
			return fmt.Errorf("line %d: duplicate series %s (first sample at line %d)", lineNo, series, first)
		}
		seen[series] = lineNo
	}
	return sc.Err()
}

// parsePromLabels decodes a {k="v",...} label block (as matched by
// sampleLine) into pairs, unescaping the quoted values.
func parsePromLabels(block string) ([]Label, error) {
	if block == "" {
		return nil, nil
	}
	s := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var out []Label
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label block %q", block)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %q: unquoted value in %q", key, block)
		}
		i++
		var b strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				closed = true
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %q: unterminated value in %q", key, block)
		}
		//mimonet:obshygiene-ok exposition parser reconstructs labels from scraped text
		out = append(out, Label{Key: key, Value: b.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("malformed label block %q", block)
			}
			i++
		}
	}
	return out, nil
}
