package obs

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServerCloseBeforeListenPoisons pins the lifecycle contract: Close on a
// never-listening server is a clean no-op, but it poisons the server so a
// later Listen cannot resurrect it.
func TestServerCloseBeforeListenPoisons(t *testing.T) {
	srv, _, _ := testServer(t)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close before Listen = %v", err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Listen after Close = %v, want already-closed error", err)
	}
	// And still idempotent afterwards.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestServerDoubleListenFails(t *testing.T) {
	srv, _, _ := testServer(t)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Listen("127.0.0.1:0"); err == nil || !strings.Contains(err.Error(), "already listening") {
		t.Fatalf("second Listen = %v, want already-listening error", err)
	}
	// The first listener is unharmed by the refused second bind.
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestServerCloseListenRace drives Close and Listen concurrently many times:
// whichever order they land in, afterwards no listener may be left serving —
// the invariant that lets a shutdown path race an init path safely.
func TestServerCloseListenRace(t *testing.T) {
	for i := 0; i < 25; i++ {
		srv, _, _ := testServer(t)
		var (
			wg       sync.WaitGroup
			addr     net.Addr
			listenEr error
		)
		wg.Add(2)
		go func() { defer wg.Done(); addr, listenEr = srv.Listen("127.0.0.1:0") }()
		go func() { defer wg.Done(); srv.Close() }()
		wg.Wait()
		srv.Close() // settle: if Listen won the race, tear it down now
		if listenEr != nil {
			continue // Close won; nothing was ever bound
		}
		d := net.Dialer{Timeout: 500 * time.Millisecond}
		conn, err := d.Dial("tcp", addr.String())
		if err == nil {
			conn.Close()
			t.Fatalf("iteration %d: listener still accepting after Close", i)
		}
	}
}

// TestServerHandleExtraRoute mounts a route through the Handle seam and
// serves it through a real Listen — the path that once deadlocked when
// Listen built the mux while holding the state lock.
func TestServerHandleExtraRoute(t *testing.T) {
	srv, _, _ := testServer(t)
	srv.Handle("/extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "mounted")
	}))
	done := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			errc <- err
			return
		}
		done <- addr
	}()
	var addr net.Addr
	select {
	case addr = <-done:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("Listen wedged (mux built under the state lock?)")
	}
	defer srv.Close()

	for _, path := range []string{"/extra", "/metrics"} {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
