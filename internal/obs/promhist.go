package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The histogram semantic layer of exposition checking. ValidateExposition
// accepts any syntactically well-formed stream; a histogram can still lie —
// bucket counts that shrink as le grows, a +Inf bucket that disagrees with
// _count, a point missing its _sum. Those bugs pass every scrape and only
// surface as impossible quantiles in dashboards, so promcheck runs this
// second pass over the same input.

var labelPair = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)

// histPoint accumulates one histogram labelset's samples across the stream.
type histPoint struct {
	family  string
	labels  string // canonical sorted label text, le removed
	buckets map[float64]float64
	sum     bool
	count   bool
	nCount  float64
}

func (p *histPoint) id() string {
	if p.labels == "" {
		return p.family
	}
	return p.family + "{" + p.labels + "}"
}

// ValidateHistograms semantically checks every histogram family in a
// Prometheus text stream: per labelset the cumulative bucket counts must be
// non-decreasing in le, a +Inf bucket must exist and equal _count, and both
// _sum and _count must be present. Families are recognised by their # TYPE
// line, so run ValidateExposition first to reject malformed streams.
func ValidateHistograms(r io.Reader) error {
	hists := make(map[string]bool)
	points := make(map[string]*histPoint)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeLine.FindStringSubmatch(line); m != nil && Kind(m[2]) == KindHistogram {
				hists[m[1]] = true
			}
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			continue // syntax is ValidateExposition's concern
		}
		name, labelBlock, value := m[1], m[2], m[5]
		var family, suffix string
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, s); f != name && hists[f] {
				family, suffix = f, s
				break
			}
		}
		if family == "" {
			continue
		}
		v, err := parseSampleValue(value)
		if err != nil {
			return fmt.Errorf("line %d: %s: %w", lineNo, name, err)
		}
		le, rest, hasLE := splitLE(labelBlock)
		if suffix != "_bucket" {
			// le on _sum/_count would make it a different series; treat it as
			// an ordinary label so the mismatch surfaces as a missing bucket.
			rest = canonicalLabels(labelBlock, false)
		}
		p := points[family+"\x00"+rest]
		if p == nil {
			p = &histPoint{family: family, labels: rest, buckets: make(map[float64]float64)}
			points[family+"\x00"+rest] = p
		}
		switch suffix {
		case "_bucket":
			if !hasLE {
				return fmt.Errorf("line %d: %s: _bucket sample without le label", lineNo, p.id())
			}
			bound, err := parseLE(le)
			if err != nil {
				return fmt.Errorf("line %d: %s: %w", lineNo, p.id(), err)
			}
			if prev, dup := p.buckets[bound]; dup && prev != v {
				return fmt.Errorf("line %d: %s: duplicate le=%q bucket with conflicting counts", lineNo, p.id(), le)
			}
			p.buckets[bound] = v
		case "_sum":
			p.sum = true
		case "_count":
			p.count, p.nCount = true, v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	keys := make([]string, 0, len(points))
	for k := range points {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := points[k]
		if len(p.buckets) == 0 {
			return fmt.Errorf("histogram %s: no _bucket samples", p.id())
		}
		if !p.count {
			return fmt.Errorf("histogram %s: missing _count", p.id())
		}
		if !p.sum {
			return fmt.Errorf("histogram %s: missing _sum", p.id())
		}
		bounds := make([]float64, 0, len(p.buckets))
		for le := range p.buckets {
			bounds = append(bounds, le)
		}
		sort.Float64s(bounds)
		top := bounds[len(bounds)-1]
		if !math.IsInf(top, 1) {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", p.id())
		}
		prev := math.Inf(-1)
		prevCount := -1.0
		for _, le := range bounds {
			c := p.buckets[le]
			if c < prevCount {
				return fmt.Errorf("histogram %s: bucket counts not cumulative: le=%s count %g < le=%s count %g",
					p.id(), formatFloat(le), c, formatFloat(prev), prevCount)
			}
			prev, prevCount = le, c
		}
		if inf := p.buckets[top]; inf != p.nCount {
			return fmt.Errorf("histogram %s: +Inf bucket count %g != _count %g", p.id(), inf, p.nCount)
		}
	}
	return nil
}

// splitLE extracts the le label from a sample's label block and returns the
// remaining labels in canonical (sorted) form.
func splitLE(block string) (le, rest string, ok bool) {
	var others []string
	for _, m := range labelPair.FindAllStringSubmatch(block, -1) {
		if m[1] == "le" {
			le, ok = m[2], true
			continue
		}
		others = append(others, m[1]+`="`+m[2]+`"`)
	}
	sort.Strings(others)
	return le, strings.Join(others, ","), ok
}

// canonicalLabels sorts a label block's pairs into the same form splitLE
// produces, optionally keeping le.
func canonicalLabels(block string, keepLE bool) string {
	var pairs []string
	for _, m := range labelPair.FindAllStringSubmatch(block, -1) {
		if !keepLE && m[1] == "le" {
			continue
		}
		pairs = append(pairs, m[1]+`="`+m[2]+`"`)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// parseLE parses a bucket upper bound, accepting the +Inf sentinel.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q: %w", s, err)
	}
	return v, nil
}

// parseSampleValue parses a sample value the exposition syntax admits.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q: %w", s, err)
	}
	return v, nil
}
