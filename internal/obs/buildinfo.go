package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo registers the mimonet_build_info gauge on reg: the standard
// constant-1 info-metric idiom whose labels carry the node identity —
// module version (VCS revision when stamped), Go toolchain, and the node
// role ("gw", "ap", "rx", "tx", "sim"). Every binary that serves /metrics
// exports it, which is what lets the fleet aggregator label merged streams
// by node identity instead of by scrape address. Nil-safe on a nil
// registry.
func BuildInfo(reg *Registry, role string) {
	reg.Gauge("mimonet_build_info",
		"constant 1; labels carry the build and node identity",
		Label{Key: "version", Value: moduleVersion()},
		Label{Key: "go_version", Value: runtime.Version()},
		Label{Key: "role", Value: role},
	).Set(1)
}

// moduleVersion extracts the best available build identity: the module
// version for tagged builds, the VCS revision (short) for source builds,
// "devel" otherwise.
func moduleVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return "devel"
}
