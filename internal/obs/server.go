package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Server exposes the telemetry surfaces over HTTP:
//
//	/metrics      Prometheus text exposition of the registry
//	/healthz      JSON from the health function (flowgraph Graph.Health)
//	/trace        JSON of the tracer's recent packet traces, newest first;
//	              ?n=K keeps the newest K, ?failed=1 keeps only finished
//	              traces whose terminal verdict was a failure
//	/dump         POST triggers the registered flight-recorder dumper and
//	              returns the artifact path (404 until SetDumper is called)
//	/debug/pprof  the standard runtime profiles
//
// The zero value is not usable; construct with NewServer. A Server with a
// nil registry, tracer, or health function still serves every endpoint
// (empty exposition, {} health, [] traces) so wiring stays unconditional.
type Server struct {
	reg    *Registry
	tracer *Tracer
	health func() any

	// ShutdownTimeout bounds how long Close waits for in-flight handlers
	// to drain before abandoning them. Zero means the 2s default; set
	// before Close (typically right after NewServer).
	ShutdownTimeout time.Duration

	mu     sync.Mutex
	ln     net.Listener
	hs     *http.Server
	closed bool
	extra  map[string]http.Handler
	dumper func(reason string) (string, error)
}

// Handle mounts an extra handler on the server's mux — the seam the
// streaming hub (/stream) and the control API (/api/) use so obs stays
// decoupled from the packages that implement them. Patterns follow
// http.ServeMux semantics. Call before Listen; a pattern registered twice
// keeps the latest handler.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.extra == nil {
		s.extra = make(map[string]http.Handler)
	}
	s.extra[pattern] = h
}

// SetDumper registers the hook behind POST /dump — typically a flight
// recorder's on-demand Dump. Until set, /dump answers 404.
func (s *Server) SetDumper(d func(reason string) (string, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dumper = d
}

// NewServer returns a server over the given telemetry roots. health may be
// nil; when set it is called per /healthz request and its result JSON
// encoded (the flowgraph wires Graph.Health here).
func NewServer(reg *Registry, tracer *Tracer, health func() any) *Server {
	return &Server{reg: reg, tracer: tracer, health: health}
}

// Handler returns the route mux, for tests and for embedding into an
// existing server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteProm(w, s.reg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = map[string]any{}
		if s.health != nil {
			v = s.health()
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		traces := s.tracer.Snapshots()
		if traces == nil {
			traces = []TraceSnapshot{}
		}
		q := r.URL.Query()
		if q.Get("failed") == "1" {
			kept := traces[:0]
			for _, t := range traces {
				if t.Done && !t.OK {
					kept = append(kept, t)
				}
			}
			traces = kept
		}
		if nStr := q.Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad n=%q: want a non-negative integer", nStr), http.StatusBadRequest)
				return
			}
			if n < len(traces) {
				traces = traces[:n] // snapshots are newest-first
			}
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, traces)
	})
	mux.HandleFunc("/dump", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		s.mu.Lock()
		dumper := s.dumper
		s.mu.Unlock()
		if dumper == nil {
			http.Error(w, "no flight recorder configured", http.StatusNotFound)
			return
		}
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "manual"
		}
		file, err := dumper(reason)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, map[string]string{"file": file, "reason": reason})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mu.Lock()
	for pattern, h := range s.extra {
		mux.Handle(pattern, h)
	}
	s.mu.Unlock()
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Listen binds addr and starts serving in a background goroutine, returning
// the bound address (useful with port 0). Listen after Close fails rather
// than resurrecting a server the caller already tore down — the guarantee
// that makes a Close racing a Listen safe: whichever order the two land in,
// no listener survives.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %q: %w", addr, err)
	}
	// Build the mux before taking the state lock: Handler itself locks mu
	// to copy the extra routes.
	handler := s.Handler()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("obs: listen %q: server already closed", addr)
	}
	if s.hs != nil {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("obs: listen %q: server already listening", addr)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: handler}
	hs := s.hs
	s.mu.Unlock()
	go func() {
		// ErrServerClosed and accept-after-Close errors are the normal
		// shutdown path; anything the operator needs shows up on scrape.
		_ = hs.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Close stops the listener and drains in-flight handlers: new connections
// are refused immediately, while active requests (a scrape mid-exposition, a
// /dump writing its artifact) get up to ShutdownTimeout to complete before
// being cut off. Idempotent and race-safe: Close without a prior Listen is
// a no-op that still poisons the server (a later Listen fails), concurrent
// Closes each return nil once the shutdown has happened, and a Close racing
// a Listen leaves no listener behind whichever wins.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	timeout := s.ShutdownTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := hs.Shutdown(ctx)
	if err == nil {
		return nil
	}
	// Handlers outlived the deadline (or Shutdown was interrupted): fall
	// back to the abrupt close so Close always releases the port.
	if cerr := hs.Close(); cerr != nil {
		return cerr
	}
	return err
}
