package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server exposes the telemetry surfaces over HTTP:
//
//	/metrics      Prometheus text exposition of the registry
//	/healthz      JSON from the health function (flowgraph Graph.Health)
//	/trace        JSON of the tracer's recent packet traces, newest first
//	/debug/pprof  the standard runtime profiles
//
// The zero value is not usable; construct with NewServer. A Server with a
// nil registry, tracer, or health function still serves every endpoint
// (empty exposition, {} health, [] traces) so wiring stays unconditional.
type Server struct {
	reg    *Registry
	tracer *Tracer
	health func() any

	mu sync.Mutex
	ln net.Listener
	hs *http.Server
}

// NewServer returns a server over the given telemetry roots. health may be
// nil; when set it is called per /healthz request and its result JSON
// encoded (the flowgraph wires Graph.Health here).
func NewServer(reg *Registry, tracer *Tracer, health func() any) *Server {
	return &Server{reg: reg, tracer: tracer, health: health}
}

// Handler returns the route mux, for tests and for embedding into an
// existing server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteProm(w, s.reg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = map[string]any{}
		if s.health != nil {
			v = s.health()
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := s.tracer.Snapshots()
		if traces == nil {
			traces = []TraceSnapshot{}
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Listen binds addr and starts serving in a background goroutine, returning
// the bound address (useful with port 0).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %q: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.hs = &http.Server{Handler: s.Handler()}
	hs := s.hs
	s.mu.Unlock()
	go func() {
		// ErrServerClosed and accept-after-Close errors are the normal
		// shutdown path; anything the operator needs shows up on scrape.
		_ = hs.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Close stops the listener. Safe to call without a prior Listen.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hs == nil {
		return nil
	}
	err := s.hs.Close()
	s.hs, s.ln = nil, nil
	return err
}
