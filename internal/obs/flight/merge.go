package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Load reads one dump artifact.
func Load(path string) (*DumpFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	var df DumpFile
	if err := json.Unmarshal(data, &df); err != nil {
		return nil, fmt.Errorf("flight: parse %s: %w", path, err)
	}
	return &df, nil
}

// Timeline is one packet's merged cross-process record: every node's
// evidence for the same TX-assigned packet ID.
type Timeline struct {
	PacketID uint64
	Entries  []Evidence // TX-side first, then by capture time
}

// Verdict is the link-level outcome: the worst verdict any node recorded.
// A transmit-side "sent" only stands when no receive-side record exists —
// once a receiver weighed in, its outcome (ok or any failure) is the
// packet's fate.
func (t *Timeline) Verdict() string {
	verdict, rank := "", -1
	for i := range t.Entries {
		e := &t.Entries[i]
		if e.Verdict == VerdictRestart {
			continue
		}
		r := 1 // a receive-side outcome
		switch {
		case e.Failed():
			r = 2
		case e.Verdict == VerdictSent:
			r = 0
		}
		if r > rank {
			verdict, rank = e.Verdict, r
		}
	}
	if verdict == "" {
		verdict = VerdictRestart
	}
	return verdict
}

// roleOrder places TX evidence before RX in a merged timeline, mirroring the
// packet's actual trip across the link.
func roleOrder(node string) int {
	switch node {
	case "tx":
		return 0
	case "sim":
		return 1
	default:
		return 2
	}
}

// Merge correlates evidence across dump files by packet ID, returning
// timelines sorted by packet ID. Entries with packet ID 0 (unknown) are
// grouped under ID 0 rather than dropped, so pre-v2 captures stay visible.
func Merge(dumps ...*DumpFile) []Timeline {
	byID := map[uint64][]Evidence{}
	for _, df := range dumps {
		if df == nil {
			continue
		}
		for _, ev := range df.Packets {
			if ev.Node == "" {
				ev.Node = df.Node
			}
			byID[ev.PacketID] = append(byID[ev.PacketID], ev)
		}
	}
	out := make([]Timeline, 0, len(byID))
	for id, entries := range byID {
		sort.SliceStable(entries, func(i, j int) bool {
			ri, rj := roleOrder(entries[i].Node), roleOrder(entries[j].Node)
			if ri != rj {
				return ri < rj
			}
			return entries[i].CapturedNs < entries[j].CapturedNs
		})
		out = append(out, Timeline{PacketID: id, Entries: entries})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PacketID < out[j].PacketID })
	return out
}

// waterfallWidth is the character budget for one span bar.
const waterfallWidth = 32

// Render writes one packet's human-readable post-mortem: the verdict line,
// each node's span waterfall, the channel condition summary, and the
// per-subcarrier EVM table.
func Render(w io.Writer, t *Timeline) {
	fmt.Fprintf(w, "packet %d  verdict=%s  (%d node record(s))\n", t.PacketID, t.Verdict(), len(t.Entries))
	for i := range t.Entries {
		renderEntry(w, &t.Entries[i])
	}
}

func renderEntry(w io.Writer, e *Evidence) {
	fmt.Fprintf(w, "  [%s] verdict=%s snr=%.1fdB mcs=%d sync@%d", nameOr(e.Node, "?"), e.Verdict, e.SNRdB, e.MCS, e.SyncIndex)
	if e.CFOHz != 0 {
		fmt.Fprintf(w, " cfo=%.1fHz", e.CFOHz)
	}
	if e.Note != "" {
		fmt.Fprintf(w, " note=%q", e.Note)
	}
	fmt.Fprintln(w)
	renderWaterfall(w, e.Trace)
	if len(e.ChanEst) > 0 {
		min, max, mean := condSummary(e.ChanEst)
		fmt.Fprintf(w, "    chanest: %d tones, cond dB min=%.1f mean=%.1f max=%.1f\n", len(e.ChanEst), min, mean, max)
	}
	if len(e.SyncIQ) > 0 {
		fmt.Fprintf(w, "    sync IQ: %d chain(s) x %d samples\n", len(e.SyncIQ), len(e.SyncIQ[0]))
	}
	if e.SoftBits.Count > 0 {
		fmt.Fprintf(w, "    soft bits: n=%d mean|LLR|=%.2f weak=%.1f%%\n", e.SoftBits.Count, e.SoftBits.MeanAbs, 100*e.SoftBits.WeakFrac)
	}
	renderEVM(w, e.EVM)
}

func renderWaterfall(w io.Writer, tr obs.TraceSnapshot) {
	if len(tr.Spans) == 0 {
		return
	}
	var total int64
	for _, s := range tr.Spans {
		total += s.TotalNs
	}
	var offset int64
	for _, s := range tr.Spans {
		bar := barAt(offset, s.TotalNs, total)
		fmt.Fprintf(w, "    %-10s %s %8.3fms x%d\n", s.Stage, bar, float64(s.TotalNs)/1e6, s.Count)
		offset += s.TotalNs
	}
}

// barAt renders a waterfall bar: spaces up to the span's cumulative offset,
// then a block proportional to its share of the trace.
func barAt(offset, dur, total int64) string {
	if total <= 0 {
		return strings.Repeat(".", waterfallWidth)
	}
	lead := int(offset * waterfallWidth / total)
	fill := int(dur * waterfallWidth / total)
	if fill < 1 {
		fill = 1
	}
	if lead+fill > waterfallWidth {
		fill = waterfallWidth - lead
	}
	return strings.Repeat(" ", lead) + strings.Repeat("#", fill) + strings.Repeat(".", waterfallWidth-lead-fill)
}

func condSummary(ce []ChannelEstimate) (min, max, mean float64) {
	min = ce[0].CondDB
	for _, c := range ce {
		if c.CondDB < min {
			min = c.CondDB
		}
		if c.CondDB > max {
			max = c.CondDB
		}
		mean += c.CondDB
	}
	return min, max, mean / float64(len(ce))
}

func renderEVM(w io.Writer, bins []SubcarrierEVM) {
	if len(bins) == 0 {
		return
	}
	fmt.Fprintf(w, "    %-4s %-10s %-8s %s\n", "tone", "evm_rms", "snr_db", "syms")
	for _, b := range bins {
		fmt.Fprintf(w, "    %-4d %-10.4f %-8.1f %d\n", b.Subcarrier, b.EVMRMS, b.SNRdB, b.Count)
	}
}
