package flight

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cmatrix"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func testRecorder(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewFake(time.Unix(5000, 0))
	}
	if cfg.Node == "" {
		cfg.Node = "rx"
	}
	return New(cfg)
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(Evidence{PacketID: 1})
		r.RestartObserved("rx", 1, nil)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder ops allocated %v/op, want 0", allocs)
	}
	if _, err := r.Dump("manual"); err == nil {
		t.Fatal("nil recorder Dump should error")
	}
}

func TestRecordTriggersOnFailure(t *testing.T) {
	r := testRecorder(t, Config{Capacity: 4, OnFailure: true})
	file, reason, err := r.Record(Evidence{PacketID: 1, Verdict: VerdictOK, SNRdB: 20})
	if err != nil || file != "" || reason != "" {
		t.Fatalf("ok packet dumped: %q %q %v", file, reason, err)
	}
	file, reason, err = r.Record(Evidence{PacketID: 2, Verdict: VerdictCRCFail, SNRdB: 20})
	if err != nil || file == "" || reason != VerdictCRCFail {
		t.Fatalf("crc_fail packet: %q %q %v", file, reason, err)
	}
	df, err := Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if df.Node != "rx" || df.Reason != VerdictCRCFail || len(df.Packets) != 2 {
		t.Fatalf("dump = node %q reason %q %d packets", df.Node, df.Reason, len(df.Packets))
	}
	// Oldest first, both packets, capture time stamped by the fake clock.
	if df.Packets[0].PacketID != 1 || df.Packets[1].PacketID != 2 {
		t.Fatalf("packet order = %d, %d", df.Packets[0].PacketID, df.Packets[1].PacketID)
	}
	if df.Packets[0].CapturedNs != time.Unix(5000, 0).UnixNano() {
		t.Fatalf("captured_ns = %d", df.Packets[0].CapturedNs)
	}
	if base := filepath.Base(file); base != "flight-rx-0000-crc_fail.json" {
		t.Fatalf("artifact name = %q", base)
	}
}

func TestRingBoundsEvidence(t *testing.T) {
	r := testRecorder(t, Config{Capacity: 3})
	for i := 1; i <= 7; i++ {
		r.Record(Evidence{PacketID: uint64(i), Verdict: VerdictOK})
	}
	file, err := r.Dump("manual")
	if err != nil {
		t.Fatal(err)
	}
	df, err := Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(df.Packets) != 3 {
		t.Fatalf("dump kept %d packets, want ring capacity 3", len(df.Packets))
	}
	for i, want := range []uint64{5, 6, 7} {
		if df.Packets[i].PacketID != want {
			t.Fatalf("packet[%d] = %d, want %d", i, df.Packets[i].PacketID, want)
		}
	}
}

func TestSNRDropTrigger(t *testing.T) {
	r := testRecorder(t, Config{Capacity: 32, SNRDropDB: 6})
	for i := 1; i <= minSNRHistory; i++ {
		file, reason, _ := r.Record(Evidence{PacketID: uint64(i), Verdict: VerdictOK, SNRdB: 20})
		if file != "" {
			t.Fatalf("dump before history filled: %q", reason)
		}
	}
	// 3 dB below the mean: inside tolerance.
	if file, _, _ := r.Record(Evidence{PacketID: 100, Verdict: VerdictOK, SNRdB: 17}); file != "" {
		t.Fatal("3 dB drop should not trigger at a 6 dB threshold")
	}
	file, reason, err := r.Record(Evidence{PacketID: 101, Verdict: VerdictOK, SNRdB: 10})
	if err != nil || file == "" || reason != "snr_drop" {
		t.Fatalf("10 dB drop: %q %q %v", file, reason, err)
	}
}

func TestRestartObserved(t *testing.T) {
	r := testRecorder(t, Config{Capacity: 4, OnRestart: true})
	r.Record(Evidence{PacketID: 9, Verdict: VerdictOK})
	file, err := r.RestartObserved("rx", 2, nil)
	if err != nil || file == "" {
		t.Fatalf("restart dump: %q %v", file, err)
	}
	df, err := Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if df.Reason != "restart" || len(df.Packets) != 2 {
		t.Fatalf("dump = reason %q, %d packets", df.Reason, len(df.Packets))
	}
	last := df.Packets[len(df.Packets)-1]
	if last.Verdict != VerdictRestart || !strings.Contains(last.Note, "block rx restart #2") {
		t.Fatalf("restart evidence = %+v", last)
	}
	// Without the trigger armed: note recorded, no dump.
	r2 := testRecorder(t, Config{Capacity: 4})
	if file, err := r2.RestartObserved("tx", 1, nil); err != nil || file != "" {
		t.Fatalf("unarmed restart dumped: %q %v", file, err)
	}
}

func TestCaptureHelpers(t *testing.T) {
	iq := CaptureIQ([][]complex128{
		{1, 2i, 3, 4i, 5, 6i},
		{1, 1, 1, 1, 1, 1},
	}, 1, 2)
	if len(iq) != 2 {
		t.Fatalf("chains = %d", len(iq))
	}
	// Window [max(0,-1), 4) clamps at the left edge.
	if len(iq[0]) != 4 || iq[0][1] != [2]float64{0, 2} {
		t.Fatalf("clamped window = %v", iq[0])
	}

	// Identity 2x2 channel: condition number 0 dB.
	h := cmatrix.Identity(2)
	ce := CaptureChanEst([]*cmatrix.Matrix{h, nil, h}, []int{-7, 0, 7})
	if len(ce) != 2 {
		t.Fatalf("estimates = %d (nil matrix must be skipped)", len(ce))
	}
	if ce[0].Subcarrier != -7 || ce[1].Subcarrier != 7 {
		t.Fatalf("tone labels = %d, %d", ce[0].Subcarrier, ce[1].Subcarrier)
	}
	if math.Abs(ce[0].CondDB) > 1e-9 {
		t.Fatalf("identity cond = %g dB, want 0", ce[0].CondDB)
	}
	if ce[0].H[0][0] != [2]float64{1, 0} || ce[0].H[0][1] != [2]float64{0, 0} {
		t.Fatalf("H = %v", ce[0].H)
	}

	acc := make([]metrics.EVM, 3)
	acc[0].Add(1.1, 1) // some error on tone 0
	acc[2].Add(1, 1)   // zero error on tone 2 -> capped SNR
	bins := EVMBins(acc, []int{-1, 0, 1})
	if len(bins) != 2 {
		t.Fatalf("bins = %d (empty tone must be skipped)", len(bins))
	}
	if bins[0].Subcarrier != -1 || bins[1].Subcarrier != 1 {
		t.Fatalf("bin tones = %d, %d", bins[0].Subcarrier, bins[1].Subcarrier)
	}
	if math.Abs(bins[0].EVMRMS-0.1) > 1e-9 {
		t.Fatalf("evm = %g, want 0.1", bins[0].EVMRMS)
	}
	if bins[1].SNRdB != 150 {
		t.Fatalf("zero-error SNR = %g, want capped 150", bins[1].SNRdB)
	}

	st := SoftStats([]float64{-4, 0.5, 2, -0.25})
	if st.Count != 4 || st.MaxAbs != 4 || st.MinAbs != 0.25 {
		t.Fatalf("soft stats = %+v", st)
	}
	if math.Abs(st.WeakFrac-0.5) > 1e-9 {
		t.Fatalf("weak frac = %g, want 0.5", st.WeakFrac)
	}
	if z := SoftStats(nil); z.Count != 0 || z.MinAbs != 0 {
		t.Fatalf("empty soft stats = %+v", z)
	}
}

func TestMergeAndRender(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(time.Unix(6000, 0))
	tx := New(Config{Capacity: 8, Dir: dir, Node: "tx", Clock: clk})
	rx := New(Config{Capacity: 8, Dir: dir, Node: "rx", Clock: clk})

	tracer := obs.NewTracer(4, clk)
	tracer.SetRole("rx")
	tr := tracer.Start()
	tr.SetPacketID(7)
	tr.Begin(obs.StageSync)
	clk.Advance(2 * time.Millisecond)
	tr.Begin(obs.StageViterbi)
	clk.Advance(time.Millisecond)
	tr.Finish(false)

	tx.Record(Evidence{PacketID: 7, Verdict: VerdictSent, SNRdB: 0})
	tx.Record(Evidence{PacketID: 8, Verdict: VerdictSent})
	acc := make([]metrics.EVM, 1)
	acc[0].Add(1.2, 1)
	rx.Record(Evidence{
		PacketID:  7,
		Verdict:   VerdictCRCFail,
		SNRdB:     11.5,
		MCS:       9,
		SyncIndex: 320,
		SyncIQ:    CaptureIQ([][]complex128{{1, 2, 3, 4}}, 2, 1),
		ChanEst:   CaptureChanEst([]*cmatrix.Matrix{cmatrix.Identity(2)}, []int{-28}),
		EVM:       EVMBins(acc, []int{-28}),
		SoftBits:  SoftStats([]float64{0.1, -3}),
		Trace:     tr.Snapshot(),
	})

	txFile, err := tx.Dump("manual")
	if err != nil {
		t.Fatal(err)
	}
	rxFile, err := rx.Dump("manual")
	if err != nil {
		t.Fatal(err)
	}
	txDump, err := Load(txFile)
	if err != nil {
		t.Fatal(err)
	}
	rxDump, err := Load(rxFile)
	if err != nil {
		t.Fatal(err)
	}

	tls := Merge(txDump, rxDump)
	if len(tls) != 2 {
		t.Fatalf("timelines = %d, want 2 (packets 7, 8)", len(tls))
	}
	if tls[0].PacketID != 7 || tls[1].PacketID != 8 {
		t.Fatalf("timeline ids = %d, %d", tls[0].PacketID, tls[1].PacketID)
	}
	p7 := tls[0]
	if len(p7.Entries) != 2 || p7.Entries[0].Node != "tx" || p7.Entries[1].Node != "rx" {
		t.Fatalf("packet 7 entries = %+v", p7.Entries)
	}
	if p7.Verdict() != VerdictCRCFail {
		t.Fatalf("packet 7 verdict = %q", p7.Verdict())
	}
	if tls[1].Verdict() != VerdictSent {
		t.Fatalf("packet 8 verdict = %q", tls[1].Verdict())
	}

	var b strings.Builder
	Render(&b, &p7)
	out := b.String()
	for _, want := range []string{
		"packet 7  verdict=crc_fail",
		"[tx] verdict=sent",
		"[rx] verdict=crc_fail snr=11.5dB mcs=9 sync@320",
		"sync", "viterbi", // waterfall rows
		"chanest: 1 tones",
		"sync IQ: 1 chain(s) x 3 samples",
		"soft bits: n=2",
		"-28", // EVM table tone
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
