// Package flight is the link-level flight recorder: a bounded ring of
// per-packet PHY evidence — the IQ window around the sync point, the channel
// estimate with per-subcarrier condition numbers, per-subcarrier EVM, soft-bit
// statistics, and the packet's trace spans — dumped to self-contained JSON
// artifacts when an armed trigger fires (CRC failure, supervisor restart, an
// SNR drop against the running mean, or an on-demand POST /dump).
//
// The recorder follows the repo's nil-safe instrument convention: every
// method no-ops on a nil *Recorder, so the instrumented receive path costs
// nothing — zero allocations — when recording is disabled.
package flight

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/clock"
	"repro/internal/cmatrix"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sounding"
)

// Verdict strings shared by recorder evidence, dump files, and the
// mimonet-dump timeline. The PHY maps its receive errors onto these.
const (
	VerdictOK       = "ok"
	VerdictCRCFail  = "crc_fail"
	VerdictNoPacket = "no_packet"
	VerdictBadSIG   = "bad_sig"
	VerdictDecode   = "decode_error"
	VerdictRestart  = "restart"
	VerdictSent     = "sent"
)

// minSNRHistory is how many packets the SNR-drop trigger needs before it
// trusts the running mean enough to arm.
const minSNRHistory = 8

// ChannelEstimate is one subcarrier's estimated channel matrix with its
// condition number in dB.
type ChannelEstimate struct {
	Subcarrier int `json:"subcarrier"`
	// H is rows × cols × (re, im): H[r][c] maps TX stream c to RX chain r.
	H      [][][2]float64 `json:"h"`
	CondDB float64        `json:"cond_db"`
}

// SubcarrierEVM is the accumulated error-vector magnitude for one data tone.
type SubcarrierEVM struct {
	Subcarrier int     `json:"subcarrier"`
	EVMRMS     float64 `json:"evm_rms"`
	SNRdB      float64 `json:"snr_db"`
	Count      int64   `json:"count"`
}

// SoftBitStats summarizes the decoder input LLRs: weak soft bits (small
// magnitude) are the first symptom of a channel the detector cannot invert.
type SoftBitStats struct {
	Count    int     `json:"count"`
	MeanAbs  float64 `json:"mean_abs"`
	MinAbs   float64 `json:"min_abs"`
	MaxAbs   float64 `json:"max_abs"`
	WeakFrac float64 `json:"weak_frac"` // fraction with |LLR| < 1
}

// Evidence is everything the recorder keeps about one packet: enough to
// replay the post-mortem without the process that captured it.
type Evidence struct {
	PacketID   uint64 `json:"packet_id"`
	Node       string `json:"node"`
	Verdict    string `json:"verdict"`
	Note       string `json:"note,omitempty"`
	CapturedNs int64  `json:"captured_unix_ns"`

	SNRdB     float64 `json:"snr_db"`
	CFOHz     float64 `json:"cfo_hz,omitempty"`
	MCS       int     `json:"mcs"`
	SyncIndex int     `json:"sync_index"`
	// SyncIQ is chains × samples × (re, im): the raw window around the
	// detected sync point, before CFO correction mutates the buffers.
	SyncIQ   [][][2]float64    `json:"sync_iq,omitempty"`
	ChanEst  []ChannelEstimate `json:"chan_est,omitempty"`
	EVM      []SubcarrierEVM   `json:"evm,omitempty"`
	SoftBits SoftBitStats      `json:"soft_bits"`
	Trace    obs.TraceSnapshot `json:"trace"`
}

// Failed reports whether the verdict is a terminal failure (not ok, not a
// TX-side or synthetic entry).
func (e *Evidence) Failed() bool {
	switch e.Verdict {
	case VerdictOK, VerdictSent, VerdictRestart:
		return false
	}
	return true
}

// Config arms the recorder. The zero value of each trigger leaves it off.
type Config struct {
	Capacity int    // evidence ring size; default 16
	Dir      string // artifact directory; default "."
	Node     string // link role label: "tx", "rx", "sim"

	OnFailure bool    // dump when a packet's terminal verdict is a failure
	OnRestart bool    // dump when the supervisor restarts a block
	SNRDropDB float64 // dump when SNR falls this far below the running mean; 0 = off

	Clock clock.Clock // nil means the system clock
}

// Recorder holds the bounded evidence ring. Safe for concurrent use; all
// methods no-op on a nil receiver.
type Recorder struct {
	mu   sync.Mutex
	cfg  Config
	clk  clock.Clock
	ring []Evidence
	n    uint64 // total Record calls
	seq  int    // dump artifacts written

	snrSum float64 // running mean state for the SNR-drop trigger
	snrN   int
}

// New returns a recorder over a fresh ring. Use a nil *Recorder to disable
// recording entirely.
func New(cfg Config) *Recorder {
	if cfg.Capacity < 1 {
		cfg.Capacity = 16
	}
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	return &Recorder{cfg: cfg, clk: clock.Or(cfg.Clock), ring: make([]Evidence, cfg.Capacity)}
}

// Enabled reports whether evidence capture should run at all. The PHY gates
// every capture block on this so the disabled path stays allocation-free.
func (r *Recorder) Enabled() bool { return r != nil }

// Record stores one packet's evidence and evaluates the armed triggers.
// When a trigger fires it dumps the ring and returns the artifact path and
// the trigger reason; otherwise both are empty. Errors writing the artifact
// are returned alongside the reason that fired.
func (r *Recorder) Record(ev Evidence) (file, reason string, err error) {
	if r == nil {
		return "", "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ev.Node == "" {
		ev.Node = r.cfg.Node
	}
	if ev.CapturedNs == 0 {
		ev.CapturedNs = r.clk.Now().UnixNano()
	}
	r.ring[r.n%uint64(len(r.ring))] = ev
	r.n++

	switch {
	case r.cfg.OnFailure && ev.Failed():
		reason = ev.Verdict
	case r.snrTriggerLocked(ev):
		reason = "snr_drop"
	}
	// The mean update comes after the trigger check so the dropped packet
	// doesn't soften its own threshold; failed packets are excluded so a
	// burst of losses doesn't drag the baseline down.
	if !ev.Failed() && ev.Verdict != VerdictRestart {
		r.snrSum += ev.SNRdB
		r.snrN++
	}
	if reason == "" {
		return "", "", nil
	}
	file, err = r.dumpLocked(reason)
	return file, reason, err
}

func (r *Recorder) snrTriggerLocked(ev Evidence) bool {
	if r.cfg.SNRDropDB <= 0 || r.snrN < minSNRHistory || ev.Verdict == VerdictRestart {
		return false
	}
	return ev.SNRdB < r.snrSum/float64(r.snrN)-r.cfg.SNRDropDB
}

// RestartObserved notes a supervisor restart of the named block and, when
// the OnRestart trigger is armed, dumps the ring so the evidence preceding
// the crash survives it.
func (r *Recorder) RestartObserved(block string, attempt int, cause error) (file string, err error) {
	if r == nil {
		return "", nil
	}
	note := fmt.Sprintf("block %s restart #%d", block, attempt)
	if cause != nil {
		note += ": " + cause.Error()
	}
	f, _, err := r.Record(Evidence{Verdict: VerdictRestart, Note: note})
	if err != nil || f != "" {
		return f, err
	}
	if !r.cfg.OnRestart {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumpLocked("restart")
}

// DumpFile is the self-contained JSON artifact one dump writes.
type DumpFile struct {
	Node      string     `json:"node"`
	Reason    string     `json:"reason"`
	Seq       int        `json:"seq"`
	CreatedNs int64      `json:"created_unix_ns"`
	Packets   []Evidence `json:"packets"` // oldest first
}

// Dump writes the current ring to a new artifact for the given reason and
// returns its path. This is the hook behind POST /dump.
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("flight: recorder disabled")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumpLocked(reason)
}

func (r *Recorder) dumpLocked(reason string) (string, error) {
	df := DumpFile{
		Node:      r.cfg.Node,
		Reason:    reason,
		Seq:       r.seq,
		CreatedNs: r.clk.Now().UnixNano(),
	}
	n := uint64(len(r.ring))
	count := r.n
	if count > n {
		count = n
	}
	df.Packets = make([]Evidence, 0, count)
	for back := count; back > 0; back-- {
		df.Packets = append(df.Packets, r.ring[(r.n-back)%n])
	}
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	name := fmt.Sprintf("flight-%s-%04d-%s.json", nameOr(r.cfg.Node, "node"), r.seq, reason)
	path := filepath.Join(r.cfg.Dir, name)
	data, err := json.MarshalIndent(df, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flight: encode dump: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	r.seq++
	return path, nil
}

func nameOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// CaptureIQ copies a window of ±half samples around center from each receive
// chain into the dump-ready pair layout, clamping at the buffer edges.
func CaptureIQ(chains [][]complex128, center, half int) [][][2]float64 {
	out := make([][][2]float64, len(chains))
	for c, ch := range chains {
		lo, hi := center-half, center+half+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(ch) {
			hi = len(ch)
		}
		if lo > hi {
			lo, hi = 0, 0
		}
		w := make([][2]float64, hi-lo)
		for i, v := range ch[lo:hi] {
			w[i] = [2]float64{real(v), imag(v)}
		}
		out[c] = w
	}
	return out
}

// CaptureChanEst converts per-subcarrier channel matrices (as produced by
// chanest.HTEstimate.DataMatrices) into dump-ready estimates with their
// condition numbers. subcarriers, when non-nil, labels each matrix with its
// tone index; otherwise positional indices are used. Nil matrices are
// skipped.
func CaptureChanEst(h []*cmatrix.Matrix, subcarriers []int) []ChannelEstimate {
	out := make([]ChannelEstimate, 0, len(h))
	for k, hk := range h {
		if hk == nil {
			continue
		}
		ce := ChannelEstimate{Subcarrier: k, H: make([][][2]float64, hk.Rows)}
		if subcarriers != nil && k < len(subcarriers) {
			ce.Subcarrier = subcarriers[k]
		}
		for rr := 0; rr < hk.Rows; rr++ {
			row := make([][2]float64, hk.Cols)
			for cc := 0; cc < hk.Cols; cc++ {
				v := hk.At(rr, cc)
				row[cc] = [2]float64{real(v), imag(v)}
			}
			ce.H[rr] = row
		}
		// encoding/json rejects NaN/Inf, so the error path uses a -1
		// sentinel (real condition numbers are >= 0 dB).
		if cond, err := sounding.ConditionDB(hk); err == nil {
			ce.CondDB = cond
		} else {
			ce.CondDB = -1
		}
		out = append(out, ce)
	}
	return out
}

// EVMBins converts per-tone metrics.EVM accumulators into dump-ready bins.
// subcarriers, when non-nil, labels each bin with its tone index. Tones that
// accumulated nothing are skipped.
func EVMBins(acc []metrics.EVM, subcarriers []int) []SubcarrierEVM {
	out := make([]SubcarrierEVM, 0, len(acc))
	for k := range acc {
		e := &acc[k]
		if e.Count() == 0 {
			continue
		}
		bin := SubcarrierEVM{
			Subcarrier: k,
			EVMRMS:     e.RMS(),
			SNRdB:      e.SNRdB(),
			Count:      e.Count(),
		}
		// A zero-error tone implies +Inf SNR, which encoding/json rejects;
		// cap at the same 150 dB ceiling the condition number uses.
		if math.IsInf(bin.SNRdB, 1) || bin.SNRdB > 150 {
			bin.SNRdB = 150
		}
		if subcarriers != nil && k < len(subcarriers) {
			bin.Subcarrier = subcarriers[k]
		}
		out = append(out, bin)
	}
	return out
}

// SoftStats summarizes decoder-input LLRs.
func SoftStats(llrs []float64) SoftBitStats {
	st := SoftBitStats{Count: len(llrs)}
	if len(llrs) == 0 {
		return st
	}
	st.MinAbs = math.Inf(1)
	var sum float64
	var weak int
	for _, l := range llrs {
		a := math.Abs(l)
		sum += a
		if a < st.MinAbs {
			st.MinAbs = a
		}
		if a > st.MaxAbs {
			st.MaxAbs = a
		}
		if a < 1 {
			weak++
		}
	}
	st.MeanAbs = sum / float64(len(llrs))
	st.WeakFrac = float64(weak) / float64(len(llrs))
	return st
}
