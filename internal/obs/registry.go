// Package obs is the runtime observability root for the MIMONet chain: a
// lock-cheap metrics registry (counters, gauges, fixed-bucket histograms
// with atomic hot paths and label support), a per-packet trace ring that
// follows a frame through the RX stages, and an HTTP exposition server
// (Prometheus text format, flowgraph health JSON, recent traces, pprof).
//
// Every instrument and the registry itself are nil-safe: a nil *Registry
// hands out nil instruments, and every method on a nil instrument is an
// allocation-free no-op. Un-instrumented paths therefore carry telemetry
// call sites at zero cost — the pattern the hotalloc lint fixture
// `instrumented.go` pins down.
//
// The package is detrand-guarded: timestamps flow through the injectable
// repro/internal/clock seam, never time.Now, so traces recorded under a
// fake clock in tests are deterministic.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension on an instrument.
type Label struct {
	Key, Value string
}

// Kind enumerates the instrument families the registry can hold.
type Kind string

// Instrument kinds, matching the Prometheus metric types they expose as.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry is the metrics root: a set of named families, each holding one
// instrument per distinct label set. Registration takes a mutex; the
// instruments it returns update through atomics only, so the per-sample hot
// path never contends. A nil *Registry is valid and hands out nil
// instruments (no-op, allocation-free).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       Kind
	buckets    []float64 // histogram families only
	// children maps the canonical label string to the instrument.
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	labels     map[string][]Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it with the given kind on first
// use. Re-registering a name under a different kind is a programming error.
func (r *Registry) family(name, help string, kind Kind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind, buckets: buckets,
			counters:   make(map[string]*Counter),
			gauges:     make(map[string]*Gauge),
			histograms: make(map[string]*Histogram),
			labels:     make(map[string][]Label),
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// labelKey canonicalizes a label set: sorted by key, joined. The sorted copy
// is also returned for snapshotting.
func labelKey(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), ls
}

// Counter returns the counter with the given name and labels, registering
// it on first use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key, ls := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindCounter, nil)
	c, ok := f.counters[key]
	if !ok {
		c = NewCounter()
		f.counters[key] = c
		f.labels[key] = ls
	}
	return c
}

// Gauge returns the gauge with the given name and labels, registering it on
// first use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key, ls := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindGauge, nil)
	g, ok := f.gauges[key]
	if !ok {
		g = NewGauge()
		f.gauges[key] = g
		f.labels[key] = ls
	}
	return g
}

// Histogram returns the histogram with the given name, bucket upper bounds
// and labels, registering it on first use. The bounds must be sorted
// ascending; an implicit +Inf bucket is always present. All instruments of
// one family share the bounds of the first registration. Returns nil on a
// nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key, ls := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindHistogram, buckets)
	h, ok := f.histograms[key]
	if !ok {
		h = NewHistogram(f.buckets)
		f.histograms[key] = h
		f.labels[key] = ls
	}
	return h
}

// Counter is a monotonically increasing count. The zero value is ready to
// use; all methods are safe for concurrent use and no-ops on nil.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to any registry —
// the backing store for wrappers like metrics.Health when no exposition
// registry is configured.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n (n must be ≥ 0).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float value. The zero value is ready to use; all
// methods are safe for concurrent use and no-ops on nil.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge not attached to any registry.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (lock-free CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper bounds,
// cumulative at snapshot time) plus sum and count. Observe is atomic and
// allocation-free; the zero value is NOT usable — construct via NewHistogram
// or Registry.Histogram. All methods no-op on nil.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Int64
}

// NewHistogram returns a standalone histogram over the given sorted upper
// bounds (an implicit +Inf bucket is appended).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %g ≤ %g", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n upper bounds starting at start, each factor times
// the previous — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	// UpperBound is the bucket's le= bound; +Inf for the last.
	UpperBound float64
	// Count is the cumulative count of observations ≤ UpperBound.
	Count int64
}

// PointSnapshot is one instrument's point-in-time state.
type PointSnapshot struct {
	Labels []Label
	// Value carries the counter or gauge value (unused for histograms).
	Value float64
	// Buckets, Sum and Count carry histogram state.
	Buckets []BucketSnapshot
	Sum     float64
	Count   int64
}

// FamilySnapshot is one family's point-in-time state.
type FamilySnapshot struct {
	Name, Help string
	Kind       Kind
	Points     []PointSnapshot
}

// Gather snapshots every family, sorted by name with points sorted by label
// set, so exposition output is byte-stable between updates. Safe to call
// concurrently with instrument updates. Returns nil on a nil registry.
func (r *Registry) Gather() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FamilySnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		keys := make([]string, 0, len(f.labels))
		switch f.kind {
		case KindCounter:
			for k := range f.counters {
				keys = append(keys, k)
			}
		case KindGauge:
			for k := range f.gauges {
				keys = append(keys, k)
			}
		case KindHistogram:
			for k := range f.histograms {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := PointSnapshot{Labels: f.labels[k]}
			switch f.kind {
			case KindCounter:
				p.Value = float64(f.counters[k].Value())
			case KindGauge:
				p.Value = f.gauges[k].Value()
			case KindHistogram:
				h := f.histograms[k]
				p.Sum = h.Sum()
				p.Buckets = make([]BucketSnapshot, len(h.counts))
				var cum int64
				for i := range h.counts {
					cum += h.counts[i].Load()
					bound := math.Inf(1)
					if i < len(h.bounds) {
						bound = h.bounds[i]
					}
					p.Buckets[i] = BucketSnapshot{UpperBound: bound, Count: cum}
				}
				p.Count = cum
			}
			fs.Points = append(fs.Points, p)
		}
		out = append(out, fs)
	}
	return out
}
