package obs

import (
	"bytes"
	"strings"
	"testing"
)

func checkHist(t *testing.T, exposition string) error {
	t.Helper()
	// The semantic pass assumes syntactically valid input.
	if _, err := ValidateExposition(strings.NewReader(exposition)); err != nil {
		t.Fatalf("crafted input is not even syntactically valid: %v", err)
	}
	return ValidateHistograms(strings.NewReader(exposition))
}

const goodHist = `# HELP h test
# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="2"} 5
h_bucket{le="+Inf"} 7
h_sum 9.5
h_count 7
`

func TestValidateHistogramsAcceptsCoherent(t *testing.T) {
	if err := checkHist(t, goodHist); err != nil {
		t.Fatalf("coherent histogram rejected: %v", err)
	}
}

func TestValidateHistogramsAcceptsRealExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("mimonet_test_seconds", "help", []float64{0.1, 1, 10},
		Label{Key: "edge", Value: "a->b"})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	reg.Counter("mimonet_test_total", "help").Inc()
	var buf bytes.Buffer
	if err := WriteProm(&buf, reg); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("registry output failed syntax pass: %v", err)
	}
	if err := ValidateHistograms(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("registry output failed semantic pass: %v\n%s", err, buf.String())
	}
}

func TestValidateHistogramsRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{
			name: "non-monotone buckets",
			input: `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 7
h_sum 9.5
h_count 7
`,
			wantErr: "not cumulative",
		},
		{
			name: "inf bucket disagrees with count",
			input: `# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 7
h_sum 9.5
h_count 8
`,
			wantErr: "+Inf bucket count 7 != _count 8",
		},
		{
			name: "missing inf bucket",
			input: `# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="2"} 5
h_sum 9.5
h_count 5
`,
			wantErr: `missing le="+Inf"`,
		},
		{
			name: "missing sum",
			input: `# TYPE h histogram
h_bucket{le="+Inf"} 7
h_count 7
`,
			wantErr: "missing _sum",
		},
		{
			name: "missing count",
			input: `# TYPE h histogram
h_bucket{le="+Inf"} 7
h_sum 9.5
`,
			wantErr: "missing _count",
		},
		{
			name: "count without buckets",
			input: `# TYPE h histogram
h_sum 9.5
h_count 7
`,
			wantErr: "no _bucket samples",
		},
		{
			name: "bucket without le",
			input: `# TYPE h histogram
h_bucket{edge="x"} 7
h_sum 9.5
h_count 7
`,
			wantErr: "without le label",
		},
		{
			name: "duplicate conflicting bucket",
			input: `# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="1"} 4
h_bucket{le="+Inf"} 7
h_sum 9.5
h_count 7
`,
			wantErr: "conflicting counts",
		},
		{
			name: "bad labelset among good ones",
			input: `# TYPE h histogram
h_bucket{edge="good",le="1"} 1
h_bucket{edge="good",le="+Inf"} 2
h_sum{edge="good"} 1
h_count{edge="good"} 2
h_bucket{edge="bad",le="1"} 9
h_bucket{edge="bad",le="+Inf"} 2
h_sum{edge="bad"} 1
h_count{edge="bad"} 2
`,
			wantErr: `h{edge="bad"}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkHist(t, tc.input)
			if err == nil {
				t.Fatalf("accepted bad input:\n%s", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateHistogramsLabelOrderInsensitive(t *testing.T) {
	// The same labelset spelled in two orders is one point; le position in
	// the block is irrelevant.
	input := `# TYPE h histogram
h_bucket{a="1",b="2",le="1"} 3
h_bucket{le="+Inf",b="2",a="1"} 7
h_sum{b="2",a="1"} 9.5
h_count{a="1",b="2"} 7
`
	if err := checkHist(t, input); err != nil {
		t.Fatalf("label order changed point identity: %v", err)
	}
}

func TestValidateHistogramsIgnoresNonHistogramSuffixes(t *testing.T) {
	// A counter that merely ends in _count must not be mistaken for a
	// histogram component.
	input := `# TYPE widgets_count counter
widgets_count 12
`
	if err := checkHist(t, input); err != nil {
		t.Fatalf("standalone counter misclassified: %v", err)
	}
}
