package obs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
)

func fakeClock() *clock.Fake {
	return clock.NewFake(time.Unix(1000, 0))
}

func TestTraceSpansWithFakeClock(t *testing.T) {
	clk := fakeClock()
	tracer := NewTracer(4, clk)
	tr := tracer.Start()

	tr.Begin(StageSync)
	clk.Advance(10 * time.Millisecond)
	// Entering the next stage closes sync implicitly.
	tr.Begin(StageChanest)
	clk.Advance(5 * time.Millisecond)
	tr.Begin(StageDemod)
	clk.Advance(2 * time.Millisecond)
	// Re-entering an existing stage accumulates instead of adding a span.
	tr.Begin(StageChanest)
	clk.Advance(3 * time.Millisecond)
	tr.Finish(true)

	snaps := tracer.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	ts := snaps[0]
	if !ts.Done || !ts.OK || ts.ID != 1 {
		t.Fatalf("trace header: %+v", ts)
	}
	if len(ts.Spans) != 3 {
		t.Fatalf("spans = %d, want 3 (chanest accumulates)", len(ts.Spans))
	}
	byStage := map[string]SpanSnapshot{}
	for _, s := range ts.Spans {
		byStage[s.Stage] = s
	}
	if got := byStage[StageSync].TotalNs; got != int64(10*time.Millisecond) {
		t.Fatalf("sync total = %d, want 10ms", got)
	}
	if got := byStage[StageChanest].TotalNs; got != int64(8*time.Millisecond) {
		t.Fatalf("chanest total = %d, want 5ms+3ms accumulated", got)
	}
	if got := byStage[StageChanest].Count; got != 2 {
		t.Fatalf("chanest count = %d, want 2", got)
	}
	if got := byStage[StageDemod].TotalNs; got != int64(2*time.Millisecond) {
		t.Fatalf("demod total = %d, want 2ms", got)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	clk := fakeClock()
	tracer := NewTracer(2, clk)
	for i := 0; i < 5; i++ {
		tr := tracer.Start()
		tr.Begin(StageSync)
		clk.Advance(time.Millisecond)
		tr.Finish(i%2 == 0)
	}
	snaps := tracer.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want ring capacity 2", len(snaps))
	}
	// Newest first: ids 5, 4.
	if snaps[0].ID != 5 || snaps[1].ID != 4 {
		t.Fatalf("ids = %d, %d, want 5, 4", snaps[0].ID, snaps[1].ID)
	}
	if !snaps[0].Done || snaps[0].OK != true {
		t.Fatalf("trace 5 outcome: %+v", snaps[0])
	}
	if snaps[1].OK != false {
		t.Fatalf("trace 4 outcome: %+v", snaps[1])
	}
}

func TestTracerPartialRingSnapshots(t *testing.T) {
	tracer := NewTracer(8, fakeClock())
	tracer.Start().Finish(true)
	tracer.Start()
	if got := len(tracer.Snapshots()); got != 2 {
		t.Fatalf("snapshots = %d, want only the 2 started traces", got)
	}
}

func TestTraceSpanBudget(t *testing.T) {
	clk := fakeClock()
	tracer := NewTracer(1, clk)
	tr := tracer.Start()
	for i := 0; i < maxSpans+3; i++ {
		tr.Begin(fmt.Sprintf("stage%d", i))
		clk.Advance(time.Millisecond)
	}
	tr.Finish(true)
	snaps := tracer.Snapshots()
	if got := len(snaps[0].Spans); got != maxSpans {
		t.Fatalf("spans = %d, want capped at %d", got, maxSpans)
	}
}

func TestNilTracerAndTraceNoOps(t *testing.T) {
	var tracer *Tracer
	if tracer.Start() != nil || tracer.Active() != nil || tracer.Snapshots() != nil {
		t.Fatal("nil tracer should hand out nils")
	}
	tracer.SetRole("rx") // must not panic
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		tr.Begin(StageSync)
		tr.End()
		tr.SetPacketID(7)
		tr.Finish(true)
	})
	if allocs != 0 {
		t.Fatalf("nil trace ops allocated %v/op, want 0", allocs)
	}
	if got := tr.Snapshot(); got.ID != 0 || got.Spans != nil {
		t.Fatalf("nil trace snapshot = %+v, want zero value", got)
	}
}

// TestSnapshotUnsetTimestampsAreZero pins the regression where a span whose
// End (or a trace whose fields) still held the zero time.Time serialized as
// the zero instant's UnixNano — a huge negative sentinel — in /trace JSON.
func TestSnapshotUnsetTimestampsAreZero(t *testing.T) {
	clk := fakeClock()
	tracer := NewTracer(2, clk)
	tr := tracer.Start()
	tr.Begin(StageSync) // never ended: End stays the zero time
	snaps := tracer.Snapshots()
	if len(snaps) != 1 || len(snaps[0].Spans) != 1 {
		t.Fatalf("snapshots = %+v", snaps)
	}
	span := snaps[0].Spans[0]
	if span.EndNs != 0 {
		t.Fatalf("unset End serialized as %d, want 0", span.EndNs)
	}
	if span.StartNs != time.Unix(1000, 0).UnixNano() {
		t.Fatalf("set Start = %d, want the fake clock instant", span.StartNs)
	}
}

func TestTracePacketIDAndRole(t *testing.T) {
	tracer := NewTracer(2, fakeClock())
	tracer.SetRole("rx")
	tr := tracer.Start()
	tr.SetPacketID(42)
	tr.Begin(StageSync)
	tr.Finish(false)

	got := tr.Snapshot()
	if got.PacketID != 42 || got.Role != "rx" {
		t.Fatalf("snapshot = %+v, want packet_id 42 role rx", got)
	}
	snaps := tracer.Snapshots()
	if snaps[0].PacketID != 42 || snaps[0].Role != "rx" {
		t.Fatalf("ring snapshot = %+v", snaps[0])
	}
	// A reused ring slot must not leak the previous packet ID.
	tracer.Start()
	tracer.Start() // wraps onto tr's slot (capacity 2)
	if got := tracer.Snapshots()[0].PacketID; got != 0 {
		t.Fatalf("reused slot packet_id = %d, want reset to 0", got)
	}
}

func TestActiveSurvivesFinish(t *testing.T) {
	tracer := NewTracer(2, fakeClock())
	tr := tracer.Start()
	tr.Finish(true)
	if tracer.Active() != tr {
		t.Fatal("Active should keep returning the last started trace")
	}
}
