package obs

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// maxSpans bounds the stages one trace can record. The RX chain uses six
// (sync, chanest, demod, detector, viterbi, crc); the headroom is for
// experiment-specific stages.
const maxSpans = 8

// Canonical RX chain stage names, in packet order.
const (
	StageSync     = "sync"
	StageChanest  = "chanest"
	StageDemod    = "demod"
	StageDetector = "detector"
	StageViterbi  = "viterbi"
	StageCRC      = "crc"
)

// Span is one stage of a packet's trip through the chain. Stages whose work
// is interleaved (per-symbol demod/detect loops) accumulate: Start is the
// first entry, End the last exit, Total the summed in-stage time, Count the
// number of Begin/End pairs.
type Span struct {
	Stage string
	Start time.Time
	End   time.Time
	Total time.Duration
	Count int
}

// Trace records one packet's spans. Traces live in the Tracer's fixed ring
// and are reused in place on wraparound; recording into one is
// allocation-free. All methods are safe for concurrent use with snapshot
// reads and no-ops on a nil *Trace.
type Trace struct {
	// tracer is assigned once at ring construction and never rewritten, so
	// methods may read it before taking its lock.
	tracer *Tracer
	id     uint64
	// packetID is the TX-assigned transport correlation key (0 = unknown);
	// it ties this trace to the matching flight-recorder evidence and to
	// the sender-side trace across the process boundary.
	packetID uint64
	start    time.Time
	done     bool
	ok       bool
	spans    [maxSpans]Span
	nspans   int
	// open is the index of the span a Begin has entered and End has not yet
	// left, or -1.
	open      int
	openSince time.Time
}

// Tracer owns a fixed ring of packet traces. Start reuses the oldest slot,
// so memory is bounded no matter how long the receiver runs. Timestamps
// come from the injected clock, never the wall clock directly.
type Tracer struct {
	mu     sync.Mutex
	clk    clock.Clock
	ring   []Trace
	nextID uint64
	active *Trace
	// role labels every snapshot with the node's place in the link
	// ("tx", "rx", "sim", ...), so merged cross-process traces stay
	// attributable.
	role string
}

// NewTracer returns a tracer holding the most recent capacity traces,
// stamped by clk (nil means the system clock).
func NewTracer(capacity int, clk clock.Clock) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{clk: clock.Or(clk), ring: make([]Trace, capacity)}
	for i := range t.ring {
		t.ring[i].tracer = t
	}
	return t
}

// Start begins a new trace, evicting the oldest when the ring is full, and
// marks it active. Returns nil on a nil tracer.
func (t *Tracer) Start() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &t.ring[t.nextID%uint64(len(t.ring))]
	t.nextID++
	// Reset in place, field by field: the tracer pointer stays stable so a
	// stale *Trace held across a ring wrap can still lock safely.
	tr.id = t.nextID
	tr.packetID = 0
	tr.start = t.clk.Now()
	tr.done, tr.ok = false, false
	tr.nspans, tr.open = 0, -1
	tr.openSince = time.Time{}
	t.active = tr
	return tr
}

// SetRole labels every snapshot this tracer emits with the node's link role
// ("tx", "rx", "sim", ...). Safe on a nil tracer.
func (t *Tracer) SetRole(role string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.role = role
}

// Active returns the most recently started trace (which may already be
// finished), or nil. The receiver starts a trace per packet and leaves it
// active so the caller layer (MAC CRC check) can append its span.
func (t *Tracer) Active() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// SetPacketID attaches the TX-assigned transport packet ID to the trace,
// the correlation key flight dumps and cross-process traces share.
func (tr *Trace) SetPacketID(id uint64) {
	if tr == nil {
		return
	}
	t := tr.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	tr.packetID = id
}

// Begin enters the named stage, creating its span on first entry. Entering
// a stage while another is open closes the open one first, so sequential
// chains need no explicit End between stages.
func (tr *Trace) Begin(stage string) {
	if tr == nil {
		return
	}
	t := tr.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clk.Now()
	tr.endLocked(now)
	for i := 0; i < tr.nspans; i++ {
		if tr.spans[i].Stage == stage {
			tr.open = i
			tr.openSince = now
			return
		}
	}
	if tr.nspans == maxSpans {
		return // span budget exhausted; drop rather than allocate
	}
	tr.spans[tr.nspans] = Span{Stage: stage, Start: now}
	tr.open = tr.nspans
	tr.openSince = now
	tr.nspans++
}

// End leaves the currently open stage, accumulating its duration.
func (tr *Trace) End() {
	if tr == nil {
		return
	}
	t := tr.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	tr.endLocked(t.clk.Now())
}

func (tr *Trace) endLocked(now time.Time) {
	if tr.open < 0 {
		return
	}
	s := &tr.spans[tr.open]
	s.End = now
	s.Total += now.Sub(tr.openSince)
	s.Count++
	tr.open = -1
}

// Finish closes any open span and marks the trace complete with the
// packet's terminal outcome (FCS verified or not).
func (tr *Trace) Finish(ok bool) {
	if tr == nil {
		return
	}
	t := tr.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	tr.endLocked(t.clk.Now())
	tr.done = true
	tr.ok = ok
}

// SpanSnapshot is a plain-value copy of one span, JSON-ready for /trace.
type SpanSnapshot struct {
	Stage   string `json:"stage"`
	StartNs int64  `json:"start_unix_ns"`
	EndNs   int64  `json:"end_unix_ns"`
	TotalNs int64  `json:"total_ns"`
	Count   int    `json:"count"`
}

// TraceSnapshot is a plain-value copy of one trace.
type TraceSnapshot struct {
	ID       uint64         `json:"id"`
	PacketID uint64         `json:"packet_id,omitempty"`
	Role     string         `json:"role,omitempty"`
	StartNs  int64          `json:"start_unix_ns"`
	Done     bool           `json:"done"`
	OK       bool           `json:"ok"`
	Spans    []SpanSnapshot `json:"spans"`
}

// unixNanoOrZero converts a timestamp for JSON, mapping the zero time.Time
// (an unset Start/End) to 0 rather than the huge negative UnixNano of the
// zero instant.
func unixNanoOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Snapshots copies the live ring, newest trace first. Returns nil on a nil
// tracer.
func (t *Tracer) Snapshots() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(t.ring))
	n := uint64(len(t.ring))
	for back := uint64(0); back < n && back < t.nextID; back++ {
		out = append(out, t.ring[(t.nextID-1-back)%n].snapshotLocked(t.role))
	}
	return out
}

// Snapshot copies one trace's current state. Returns the zero snapshot on a
// nil trace.
func (tr *Trace) Snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	t := tr.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	return tr.snapshotLocked(t.role)
}

func (tr *Trace) snapshotLocked(role string) TraceSnapshot {
	ts := TraceSnapshot{
		ID:       tr.id,
		PacketID: tr.packetID,
		Role:     role,
		StartNs:  unixNanoOrZero(tr.start),
		Done:     tr.done,
		OK:       tr.ok,
		Spans:    make([]SpanSnapshot, tr.nspans),
	}
	for i := 0; i < tr.nspans; i++ {
		s := tr.spans[i]
		ts.Spans[i] = SpanSnapshot{
			Stage:   s.Stage,
			StartNs: unixNanoOrZero(s.Start),
			EndNs:   unixNanoOrZero(s.End),
			TotalNs: int64(s.Total),
			Count:   s.Count,
		}
	}
	return ts
}
