package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidateSeriesAcceptsRealExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mimonet_rx_packets_total", "h", Label{Key: "result", Value: "ok"}).Add(3)
	reg.Counter("mimonet_rx_packets_total", "h", Label{Key: "result", Value: "crc"}).Add(1)
	reg.Gauge("mimonet_rx_snr_db", "h").Set(21.5)
	reg.Histogram("mimonet_rx_latency_seconds", "h", []float64{0.001, 0.01}).Observe(0.002)
	var buf bytes.Buffer
	if err := WriteProm(&buf, reg); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSeries(&buf); err != nil {
		t.Fatalf("real exposition rejected: %v", err)
	}
}

func TestValidateSeriesRejections(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{
			name:    "reserved double underscore prefix",
			input:   `m{__name__="x"} 1` + "\n",
			wantErr: "reserved __ prefix",
		},
		{
			name:    "duplicate label within one sample",
			input:   `m{a="1",a="2"} 1` + "\n",
			wantErr: "repeated within one sample",
		},
		{
			name:    "duplicate series exact",
			input:   "m{a=\"1\"} 1\nm{a=\"1\"} 2\n",
			wantErr: "duplicate series",
		},
		{
			name:    "duplicate series across label order",
			input:   "m{a=\"1\",b=\"2\"} 1\nm{b=\"2\",a=\"1\"} 2\n",
			wantErr: "duplicate series",
		},
		{
			name:    "duplicate bare series",
			input:   "m 1\nm 2\n",
			wantErr: "duplicate series",
		},
		{
			name:    "malformed sample",
			input:   "not a sample\n",
			wantErr: "malformed sample",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSeries(strings.NewReader(tc.input))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateSeriesAllowsDistinctSeries(t *testing.T) {
	input := "# HELP m h\n# TYPE m counter\n" +
		"m{a=\"1\"} 1\n" +
		"m{a=\"2\"} 2\n" +
		"m{a=\"1\",b=\"x\"} 3\n" +
		// Escaped quote inside a value must not merge with its neighbour.
		"m{a=\"q\\\"1\"} 4\n" +
		"other 5\n"
	if err := ValidateSeries(strings.NewReader(input)); err != nil {
		t.Fatalf("distinct series rejected: %v", err)
	}
}

func TestValidateSeriesValueUnescaping(t *testing.T) {
	// The same logical value spelled with and without escapes is the same
	// series: \n in one sample and a literal backslash-n pair differ, but
	// two identical escape spellings collide.
	input := "m{a=\"x\\ny\"} 1\nm{a=\"x\\ny\"} 2\n"
	if err := ValidateSeries(strings.NewReader(input)); err == nil {
		t.Fatal("escaped duplicate series accepted")
	}
}
