package obs

import (
	"io"
	"log/slog"
)

// The logging seam: every binary builds its *slog.Logger here so log lines
// across mimonet-tx, mimonet-rx, mimonet-sim and the flowgraph supervisor
// share one structured vocabulary — the attribute keys below — and a
// packet's life can be grepped across processes by packet_id.

// Canonical attribute keys. Post-mortem tooling (mimonet-dump, log
// pipelines) keys on these, so call sites use the helpers rather than
// ad-hoc strings.
const (
	KeyPacketID = "packet_id"
	KeyTraceID  = "trace_id"
	KeyBlock    = "block"
	KeyNode     = "node"
	KeyBurst    = "burst"
)

// NewLogger returns a structured logger writing to w at the given level,
// as JSON when json is true and logfmt-style text otherwise. The node role
// ("tx", "rx", "sim") is attached to every record.
func NewLogger(w io.Writer, level slog.Level, json bool, node string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if node != "" {
		l = l.With(slog.String(KeyNode, node))
	}
	return l
}

// LogPacket labels a record with the cross-process packet correlation key.
func LogPacket(id uint64) slog.Attr { return slog.Uint64(KeyPacketID, id) }

// LogTrace labels a record with the local trace ring ID.
func LogTrace(id uint64) slog.Attr { return slog.Uint64(KeyTraceID, id) }

// LogBlock labels a record with the flowgraph block it concerns.
func LogBlock(name string) slog.Attr { return slog.String(KeyBlock, name) }

// LogBurst labels a record with the receive-side burst index.
func LogBurst(i int) slog.Attr { return slog.Int(KeyBurst, i) }
