package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every instrument shape the
// exposition has to render: bare and labelled counters, gauges (including
// non-finite values), and a labelled histogram.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("mimonet_rx_packets_total", "packets by terminal outcome",
		Label{Key: "result", Value: "ok"}).Add(7)
	r.Counter("mimonet_rx_packets_total", "packets by terminal outcome",
		Label{Key: "result", Value: "fcs_bad"}).Add(2)
	r.Counter("mimonet_udp_datagrams_total", "datagrams received").Add(41)
	r.Gauge("mimonet_rx_snr_db", "last packet SNR (dB)").Set(23.5)
	r.Gauge("mimonet_rx_cfo_hz", "corrected CFO with a\nmultiline \\ help").Set(-150.25)
	h := r.Histogram("mimonet_edge_wait_seconds", "chunk delivery wait",
		[]float64{0.001, 0.01, 0.1}, Label{Key: "edge", Value: `src:0->sink:0`})
	for _, v := range []float64{0.0005, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	return r
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePromOutputValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	fams, err := ValidateExposition(&buf)
	if err != nil {
		t.Fatalf("own output failed validation: %v", err)
	}
	want := map[string]Kind{
		"mimonet_rx_packets_total":    KindCounter,
		"mimonet_udp_datagrams_total": KindCounter,
		"mimonet_rx_snr_db":           KindGauge,
		"mimonet_rx_cfo_hz":           KindGauge,
		"mimonet_edge_wait_seconds":   KindHistogram,
	}
	for name, kind := range want {
		if fams[name] != kind {
			t.Errorf("family %s = %q, want %q", name, fams[name], kind)
		}
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, want empty", buf.String())
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "orphan_metric 1\n",
		"malformed comment":    "# NONSENSE foo bar\n",
		"bad value":            "# TYPE m gauge\nm 1.2.3\n",
		"unquoted label value": "# TYPE m gauge\nm{k=v} 1\n",
		"garbage line":         "# TYPE m gauge\n{} 1\n",
	}
	for name, in := range cases {
		if _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestValidateExpositionAcceptsHistogramSuffixes(t *testing.T) {
	in := `# HELP lat latency
# TYPE lat histogram
lat_bucket{le="0.1"} 1
lat_bucket{le="+Inf"} 2
lat_sum 0.35
lat_count 2
`
	fams, err := ValidateExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fams["lat"] != KindHistogram {
		t.Fatalf("families = %v", fams)
	}
}
