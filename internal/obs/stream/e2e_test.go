package stream_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apmac"
	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/obs/stream"
	"repro/internal/session"
)

// TestFleetEndToEnd is the issue's acceptance test: a live session gateway
// and a live AP run in-process over loopback UDP (real clocks), each with
// its telemetry hub on a fake clock, both mounted on an obs.Server with the
// /stream and /api surfaces. One aggregator subscribes to both nodes, a
// transfer and a station association are driven through the real protocol
// stacks, and the merged stream must carry:
//
//	(a) the per-session (gateway lane gauge) and per-station (AP slot
//	    gauges) metric deltas within ONE fake-clock snapshot period of the
//	    work completing;
//	(b) journal events with strictly increasing per-node sequence numbers
//	    (the Fleet's OrderViolations counter stays zero);
//	(c) answers on the control API for both node roles.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live UDP + HTTP e2e")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// --- gateway node ---
	gwReg := obs.NewRegistry()
	gwClk := clock.NewFake(time.Unix(4000, 0))
	gwHub := stream.NewHub(stream.Config{Node: "gw", Registry: gwReg, Clock: gwClk, SnapshotPeriod: time.Second})
	gw, err := session.NewGateway(session.Config{Listen: "127.0.0.1:0", Registry: gwReg, Events: gwHub})
	if err != nil {
		t.Fatal(err)
	}
	go gw.Run(ctx)

	gwSrv := obs.NewServer(gwReg, nil, nil)
	gwSrv.Handle("/stream", stream.Handler(gwHub))
	gwSrv.Handle("/api/", (&stream.Control{ListSessions: func() any { return gw.Sessions() }}).Handler())
	gwAddr, err := gwSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()
	go gwHub.Run(ctx)
	gwClk.BlockUntilWaiters(1)

	// --- AP node ---
	apReg := obs.NewRegistry()
	apClk := clock.NewFake(time.Unix(4000, 0))
	apHub := stream.NewHub(stream.Config{Node: "ap", Registry: apReg, Clock: apClk, SnapshotPeriod: time.Second})
	ap, err := apmac.NewAP(apmac.APConfig{
		Listen:       "127.0.0.1:0",
		TickInterval: 2 * time.Millisecond,
		SoundEvery:   5,
		Registry:     apReg,
		Events:       apHub,
	})
	if err != nil {
		t.Fatal(err)
	}
	go ap.Run(ctx)

	apSrv := obs.NewServer(apReg, nil, nil)
	apSrv.Handle("/stream", stream.Handler(apHub))
	apSrv.Handle("/api/", (&stream.Control{ListStations: func() any { return ap.StationList() }}).Handler())
	apAddr, err := apSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer apSrv.Close()
	go apHub.Run(ctx)
	apClk.BlockUntilWaiters(1)

	// --- aggregator over both nodes ---
	gwURL := "http://" + gwAddr.String()
	apURL := "http://" + apAddr.String()
	out := make(chan stream.Msg, 1024)
	agg := &stream.Aggregator{Nodes: []stream.NodeRef{
		{Name: "gw", BaseURL: gwURL},
		{Name: "ap", BaseURL: apURL},
	}}
	go agg.Run(ctx, out)

	fleet := stream.NewFleet()
	// waitFor folds merged messages into the fleet until cond holds. The
	// first return is the message that satisfied it.
	waitFor := func(what string, cond func(stream.Msg) bool) stream.Msg {
		t.Helper()
		deadline := time.After(15 * time.Second)
		for {
			select {
			case m := <-out:
				if m.Kind == "error" {
					t.Fatalf("node %s stream failed: %s", m.Node, m.Err)
				}
				fleet.Apply(m)
				if cond(m) {
					return m
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %s; fleet = %+v", what, fleet.Snapshot())
			}
		}
	}

	// Both subscriptions attach: hello then the full baseline snapshot.
	seen := map[string]bool{}
	waitFor("both hellos", func(m stream.Msg) bool {
		if m.Kind == "hello" {
			seen[m.Node] = true
		}
		return seen["gw"] && seen["ap"]
	})

	// --- drive a real transfer through the gateway ---
	const sessionID = 7
	payload := make([]byte, 32*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	cl, err := session.NewClient(session.ClientConfig{Addr: gw.Addr().String(), SessionID: sessionID})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(ctx, payload); err != nil {
		t.Fatalf("transfer: %v", err)
	}

	// The journal events arrive live, without any snapshot tick.
	waitFor("session_completed journal event", func(m stream.Msg) bool {
		return m.Node == "gw" && m.Kind == "journal" && m.Event.Type == stream.EventSessionCompleted &&
			m.Event.Session == sessionID && m.Event.Bytes == int64(len(payload))
	})

	// (a) one fake-clock period later the per-session lane gauge delta is on
	// the wire. Session 7 lives in lane 07.
	gwClk.Advance(time.Second)
	waitFor("per-session metric delta", func(m stream.Msg) bool {
		if m.Node != "gw" || m.Kind != "metrics" || m.Metrics.Full {
			return false
		}
		p := findPoint(m.Metrics.Points, "mimonet_gw_session_cum_bytes")
		return p != nil && p.Labels["lane"] == "07" && p.Value == float64(len(payload)) && p.Delta > 0
	})

	// --- associate a station with the AP ---
	stn, err := apmac.NewClient(apmac.ClientConfig{Addr: ap.Addr().String(), Index: 0, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); stn.Run(ctx) }()

	assoc := waitFor("station_assoc journal event", func(m stream.Msg) bool {
		return m.Node == "ap" && m.Kind == "journal" && m.Event.Type == stream.EventStationAssoc
	})
	stationID := assoc.Event.Station

	// Let the downlink serve the station so the slot gauges move, then tick.
	deadline := time.After(10 * time.Second)
	for stn.Snapshot().DataFrames < 3 {
		select {
		case <-deadline:
			t.Fatal("station never served downlink frames")
		case <-time.After(20 * time.Millisecond):
		}
	}
	apClk.Advance(time.Second)
	waitFor("per-station metric delta", func(m stream.Msg) bool {
		if m.Node != "ap" || m.Kind != "metrics" || m.Metrics.Full {
			return false
		}
		for _, p := range m.Metrics.Points {
			if strings.HasPrefix(p.Name, "mimonet_ap_station_") && p.Labels["slot"] != "" {
				return true
			}
		}
		return false
	})

	// (b) per-node journal ordering held throughout, and the fleet view
	// carries the joined object state.
	for _, n := range fleet.Snapshot() {
		if n.OrderViolations != 0 {
			t.Fatalf("node %s saw %d order violations", n.Name, n.OrderViolations)
		}
		switch n.Name {
		case "gw":
			s := n.Sessions[sessionID]
			if s == nil || s.State != "completed" || s.Bytes != int64(len(payload)) {
				t.Fatalf("fleet gw session = %+v", s)
			}
		case "ap":
			st := n.Stations[stationID]
			if st == nil || st.State != "associated" {
				t.Fatalf("fleet ap station = %+v", st)
			}
		}
	}

	// (c) the control APIs answer on both roles.
	var stations []apmac.StationInfo
	controlGet(t, apURL+"/api/stations", &stations)
	if len(stations) != 1 || stations[0].ID != stationID {
		t.Fatalf("control stations = %+v, want station %d", stations, stationID)
	}
	var sessions []session.SessionInfo
	controlGet(t, gwURL+"/api/sessions", &sessions)
	// The transfer already completed and drained, so the table may be empty —
	// the API answering well-formed JSON is the contract.
	for _, s := range sessions {
		if s.ID != sessionID {
			t.Fatalf("unexpected session in control table: %+v", s)
		}
	}
	// A verb this node does not serve answers 404.
	resp, err := http.Get(gwURL + "/api/stations")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("gw /api/stations = %d, want 404", resp.StatusCode)
	}

	cancel()
	wg.Wait()
}

func controlGet(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
