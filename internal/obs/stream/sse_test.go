package stream_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/obs/stream"
)

// TestSSERoundtrip drives the full wire path: hub → SSE handler → HTTP →
// ReadSSE → frames, asserting the attach sequence and a live event survive
// serialization.
func TestSSERoundtrip(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	reg := obs.NewRegistry()
	reg.Counter("mimonet_test_total", "test counter").Add(11)
	h := stream.NewHub(stream.Config{Node: "gw", Registry: reg, Clock: clk})
	h.Publish(stream.Event{Type: stream.EventSessionOpened, Session: 5})

	srv := httptest.NewServer(stream.Handler(h))
	defer srv.Close()
	defer h.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Publish a live event once the subscription exists (Subscribe happened
	// synchronously inside the handler before the response headers we just
	// read were written).
	h.Publish(stream.Event{Type: stream.EventStationAssoc, Station: 3, Slot: 1})

	stop := errors.New("enough")
	var got []stream.Frame
	err = stream.ReadSSE(resp.Body, func(f stream.Frame) error {
		got = append(got, f)
		if len(got) == 4 { // hello, replay, full metrics, live event
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("ReadSSE err = %v, want the sentinel", err)
	}
	wantOrder := []string{"hello", "journal", "metrics", "journal"}
	for i, f := range got {
		if f.Event != wantOrder[i] {
			t.Fatalf("frame %d = %q, want %q (all: %+v)", i, f.Event, wantOrder[i], got)
		}
	}
	live := decodeEvent(t, got[3])
	if live.Type != stream.EventStationAssoc || live.Station != 3 || live.Seq != 2 {
		t.Fatalf("live event = %+v", live)
	}
	full := decodeMetrics(t, got[2])
	if !full.Full || findPoint(full.Points, "mimonet_test_total") == nil {
		t.Fatalf("full frame = %+v", full)
	}
}

func TestReadSSEFnErrorStopsAndPropagates(t *testing.T) {
	input := "event: journal\ndata: {}\n\nevent: journal\ndata: {}\n\n"
	boom := errors.New("boom")
	calls := 0
	err := stream.ReadSSE(strings.NewReader(input), func(stream.Frame) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err = %v calls = %d, want boom after 1 call", err, calls)
	}
}

func TestReadSSEFinalFrameWithoutTrailingBlank(t *testing.T) {
	input := "event: hello\ndata: {\"node\":\"gw\"}\n"
	var got []stream.Frame
	if err := stream.ReadSSE(strings.NewReader(input), func(f stream.Frame) error {
		got = append(got, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Event != "hello" {
		t.Fatalf("frames = %+v", got)
	}
}

// TestAggregatorMergesNodes subscribes one aggregator to two live hubs and
// checks both node streams arrive tagged, plus per-node error reporting for
// a dead endpoint.
func TestAggregatorMergesNodes(t *testing.T) {
	mk := func(node string) (*stream.Hub, *httptest.Server) {
		clk := clock.NewFake(time.Unix(3000, 0))
		h := stream.NewHub(stream.Config{Node: node, Clock: clk})
		return h, httptest.NewServer(stream.Handler(h))
	}
	gw, gwSrv := mk("gw")
	defer gwSrv.Close()
	ap, apSrv := mk("ap")
	defer apSrv.Close()

	gw.Publish(stream.Event{Type: stream.EventSessionOpened, Session: 1})
	ap.Publish(stream.Event{Type: stream.EventStationAssoc, Station: 7, Slot: 0})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := make(chan stream.Msg, 64)
	agg := &stream.Aggregator{Nodes: []stream.NodeRef{
		{Name: "gw", BaseURL: gwSrv.URL},
		{Name: "ap", BaseURL: apSrv.URL},
		{Name: "dead", BaseURL: "http://127.0.0.1:1"},
	}}
	done := make(chan error, 1)
	go func() { done <- agg.Run(ctx, out) }()

	want := map[string]string{"gw": "", "ap": "", "dead": ""}
	deadline := time.After(10 * time.Second)
	for {
		gotAll := true
		for _, v := range want {
			if v == "" {
				gotAll = false
			}
		}
		if gotAll {
			break
		}
		select {
		case m := <-out:
			switch {
			case m.Kind == "journal" && m.Event != nil:
				want[m.Node] = string(m.Event.Type)
			case m.Kind == "error":
				want[m.Node] = "error:" + m.Err
			}
		case <-deadline:
			t.Fatalf("timed out waiting for all nodes; got %+v", want)
		}
	}
	if want["gw"] != string(stream.EventSessionOpened) {
		t.Fatalf("gw saw %q", want["gw"])
	}
	if want["ap"] != string(stream.EventStationAssoc) {
		t.Fatalf("ap saw %q", want["ap"])
	}
	if !strings.HasPrefix(want["dead"], "error:") {
		t.Fatalf("dead node reported %q, want an error message", want["dead"])
	}

	// Closing the hubs ends the live streams; Run returns once every node
	// goroutine finishes.
	gw.Close()
	ap.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("aggregator Run did not return after hubs closed")
	}
}

func TestAggregatorNeedsNodes(t *testing.T) {
	agg := &stream.Aggregator{}
	if err := agg.Run(context.Background(), make(chan stream.Msg, 1)); err == nil {
		t.Fatal("Run with no nodes succeeded")
	}
}
