package stream

import (
	"strings"

	"repro/internal/obs"
)

// MetricsMsg is one snapshot broadcast: either the full registry state
// (Full, sent once per subscriber at attach) or the delta since the
// previous tick (only the points whose value moved).
type MetricsMsg struct {
	Node   string `json:"node"`
	UnixNs int64  `json:"unix_ns"`
	// Full marks the attach-time baseline snapshot; deltas that follow
	// apply on top of it.
	Full   bool          `json:"full,omitempty"`
	Points []MetricPoint `json:"points"`
}

// MetricPoint is one instrument's state in a snapshot. For counters and
// gauges Value is the current value and Delta the change since the
// previous tick (zero in a full snapshot). Histograms report Count and
// Sum, with Delta carrying the observation-count change.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   obs.Kind          `json:"kind"`
	Value  float64           `json:"value,omitempty"`
	Delta  float64           `json:"delta,omitempty"`
	Count  int64             `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
}

// pointID canonicalizes one series: family name plus the sorted label set
// (Gather returns labels pre-sorted by key).
func pointID(name string, labels []obs.Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func labelMap(labels []obs.Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// scalar reduces a point to the single number change detection runs on:
// counter/gauge value, or histogram observation count.
func scalar(kind obs.Kind, p obs.PointSnapshot) float64 {
	if kind == obs.KindHistogram {
		return float64(p.Count)
	}
	return p.Value
}

func makePoint(f obs.FamilySnapshot, p obs.PointSnapshot, delta float64) MetricPoint {
	mp := MetricPoint{
		Name:   f.Name,
		Labels: labelMap(p.Labels),
		Kind:   f.Kind,
		Delta:  delta,
	}
	if f.Kind == obs.KindHistogram {
		mp.Count = p.Count
		mp.Sum = p.Sum
	} else {
		mp.Value = p.Value
	}
	return mp
}

// allPoints flattens a Gather result into the full-snapshot point list.
func allPoints(snap []obs.FamilySnapshot) []MetricPoint {
	var out []MetricPoint
	for _, f := range snap {
		for _, p := range f.Points {
			out = append(out, makePoint(f, p, 0))
		}
	}
	if out == nil {
		out = []MetricPoint{}
	}
	return out
}

// differ holds the per-hub delta state: the scalar of every series as of
// the previous tick. The zero value is ready to use.
type differ struct {
	last map[string]float64
}

// delta returns the points whose scalar moved since the previous call and
// advances the state. The first call reports every series (delta from an
// empty baseline) — subscribers attached before the first tick already
// hold the full snapshot, and re-applying a delta is idempotent for state
// trackers keyed on Value/Count.
func (d *differ) delta(snap []obs.FamilySnapshot) []MetricPoint {
	if d.last == nil {
		d.last = make(map[string]float64)
	}
	var out []MetricPoint
	for _, f := range snap {
		for _, p := range f.Points {
			id := pointID(f.Name, p.Labels)
			cur := scalar(f.Kind, p)
			prev, seen := d.last[id]
			if seen && prev == cur {
				continue
			}
			d.last[id] = cur
			out = append(out, makePoint(f, p, cur-prev))
		}
	}
	return out
}
