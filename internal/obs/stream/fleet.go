package stream

import (
	"sort"
	"strings"
	"sync"
)

// SessionView is one session's state as derived from the journal.
type SessionView struct {
	ID      uint64 `json:"id"`
	State   string `json:"state"`
	Bytes   int64  `json:"bytes,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Resumes int    `json:"resumes,omitempty"`
}

// StationView is one station's state, merged from journal events (identity,
// lifecycle) and per-slot metric points (PER, bytes, CSI age).
type StationView struct {
	ID       uint16  `json:"id"`
	Slot     uint8   `json:"slot"`
	State    string  `json:"state"`
	PER      float64 `json:"per,omitempty"`
	TxBytes  float64 `json:"tx_bytes,omitempty"`
	CSIAgeS  float64 `json:"csi_age_s,omitempty"`
	CSIStale bool    `json:"csi_stale,omitempty"`
}

// NodeView is the merged live state of one node.
type NodeView struct {
	Name string `json:"name"`
	// Seq is the highest journal sequence seen; OrderViolations counts
	// events that arrived with a non-increasing sequence — the per-node
	// monotonic-ordering invariant the E-series test asserts.
	Seq             uint64 `json:"seq"`
	Events          int    `json:"events"`
	OrderViolations int    `json:"order_violations"`
	Restarts        int    `json:"restarts"`
	LastEvent       string `json:"last_event,omitempty"`
	// Metrics is the latest value of every series seen, keyed by the
	// canonical series ID (name{k=v,...}).
	Metrics map[string]MetricPoint `json:"metrics,omitempty"`
	// Snapshots counts metric messages (full + delta) received.
	Snapshots int `json:"snapshots"`
	// Sessions and Stations are the journal-derived object tables.
	Sessions map[uint64]*SessionView `json:"sessions,omitempty"`
	Stations map[uint16]*StationView `json:"stations,omitempty"`
	slots    map[string]*StationView // slot label → station, for metric joins
}

// Fleet folds the aggregator's merged message stream into per-node state
// keyed by node/session/station. Safe for concurrent Apply/Snapshot — the
// dashboard renders from one goroutine while the aggregator feeds another.
type Fleet struct {
	mu    sync.Mutex
	nodes map[string]*NodeView
}

// NewFleet returns an empty fleet state.
func NewFleet() *Fleet { return &Fleet{nodes: make(map[string]*NodeView)} }

func (f *Fleet) node(name string) *NodeView {
	n, ok := f.nodes[name]
	if !ok {
		n = &NodeView{
			Name:     name,
			Metrics:  make(map[string]MetricPoint),
			Sessions: make(map[uint64]*SessionView),
			Stations: make(map[uint16]*StationView),
			slots:    make(map[string]*StationView),
		}
		f.nodes[name] = n
	}
	return n
}

// Apply folds one aggregator message into the fleet state.
func (f *Fleet) Apply(m Msg) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.node(m.Node)
	switch m.Kind {
	case "journal":
		if m.Event == nil {
			return
		}
		f.applyEvent(n, *m.Event)
	case "metrics":
		if m.Metrics == nil {
			return
		}
		n.Snapshots++
		for _, p := range m.Metrics.Points {
			n.Metrics[metricKey(p)] = p
			f.joinStationMetric(n, p)
		}
	}
}

func (f *Fleet) applyEvent(n *NodeView, ev Event) {
	n.Events++
	if ev.Seq <= n.Seq {
		n.OrderViolations++
	} else {
		n.Seq = ev.Seq
	}
	n.LastEvent = string(ev.Type)
	switch ev.Type {
	case EventSessionOpened:
		n.Sessions[ev.Session] = &SessionView{ID: ev.Session, State: "open", Bytes: ev.Bytes}
	case EventSessionResumed:
		s := f.session(n, ev.Session)
		s.State = "open"
		s.Resumes++
	case EventSessionCompleted:
		s := f.session(n, ev.Session)
		s.State = "completed"
		s.Bytes = ev.Bytes
	case EventSessionFailed:
		s := f.session(n, ev.Session)
		s.State = "failed"
		s.Reason = ev.Reason
	case EventStationAssoc:
		st := &StationView{ID: ev.Station, Slot: ev.Slot, State: "associated"}
		n.Stations[ev.Station] = st
		n.slots[slotKey(ev.Slot)] = st
	case EventStationDrop:
		if st, ok := n.Stations[ev.Station]; ok {
			st.State = "dropped"
		}
	case EventCSIStale:
		if st, ok := n.Stations[ev.Station]; ok {
			st.CSIStale = true
		}
	case EventSupervisorRestart:
		n.Restarts++
	case EventFlightDump, EventTraceFail:
		// Counted via Events; nothing object-shaped to track.
	}
}

func (f *Fleet) session(n *NodeView, id uint64) *SessionView {
	s, ok := n.Sessions[id]
	if !ok {
		s = &SessionView{ID: id, State: "open"}
		n.Sessions[id] = s
	}
	return s
}

// joinStationMetric folds slot-labelled AP metrics into the matching
// station view.
func (f *Fleet) joinStationMetric(n *NodeView, p MetricPoint) {
	slot, ok := p.Labels["slot"]
	if !ok {
		return
	}
	st, ok := n.slots[slot]
	if !ok {
		return
	}
	switch p.Name {
	case "mimonet_ap_station_per":
		st.PER = p.Value
	case "mimonet_ap_station_tx_bytes_total":
		st.TxBytes = p.Value
	case "mimonet_ap_station_csi_age_seconds":
		st.CSIAgeS = p.Value
		st.CSIStale = false
	}
}

func slotKey(slot uint8) string {
	const digits = "0123456789"
	return string([]byte{digits[slot/10%10], digits[slot%10]})
}

func metricKey(p MetricPoint) string {
	if len(p.Labels) == 0 {
		return p.Name
	}
	keys := make([]string, 0, len(p.Labels))
	for k := range p.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(p.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot returns a deep copy of every node view, sorted by name, safe to
// render while the aggregator keeps feeding Apply.
func (f *Fleet) Snapshot() []NodeView {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeView, 0, len(f.nodes))
	for _, n := range f.nodes {
		cp := NodeView{
			Name: n.Name, Seq: n.Seq, Events: n.Events,
			OrderViolations: n.OrderViolations, Restarts: n.Restarts,
			LastEvent: n.LastEvent, Snapshots: n.Snapshots,
			Metrics:  make(map[string]MetricPoint, len(n.Metrics)),
			Sessions: make(map[uint64]*SessionView, len(n.Sessions)),
			Stations: make(map[uint16]*StationView, len(n.Stations)),
		}
		for k, v := range n.Metrics {
			cp.Metrics[k] = v
		}
		for k, v := range n.Sessions {
			s := *v
			cp.Sessions[k] = &s
		}
		for k, v := range n.Stations {
			s := *v
			cp.Stations[k] = &s
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
