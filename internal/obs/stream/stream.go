// Package stream is the push side of the observability stack: a
// subscription hub layered on the obs.Registry and trace ring that turns
// the pull-only /metrics surface into live telemetry a fleet aggregator can
// watch. It emits two interleaved feeds per node:
//
//   - a structured event journal — session and station lifecycle
//     transitions, supervisor restarts, CSI staleness, flight-dump
//     triggers — published synchronously by the instrumented subsystems
//     (internal/session, internal/apmac, the service binaries) with a
//     per-node monotonic sequence number;
//   - periodic delta-encoded metric snapshots — on every snapshot tick the
//     hub gathers the registry and broadcasts only the points that changed
//     since the previous tick, so a fleet of mostly-idle nodes streams
//     close to nothing.
//
// The hub follows the PR 4 zero-cost discipline: with no subscriber
// attached, Publish is allocation-free (AllocsPerRun==0 — the events land
// in a preallocated replay ring and nothing is encoded) and snapshot ticks
// gather nothing. Every subscriber owns a bounded queue; a subscriber that
// stalls until its queue fills is dropped — the publisher never blocks and
// healthy subscribers never wait on a sick one.
//
// Snapshot cadence runs on the repro/internal/clock seam, so the delta
// stream is fake-clock testable end to end.
package stream

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// EventType enumerates the journal event vocabulary.
type EventType string

// Journal event types. The session gateway publishes the session_* family,
// the AP MAC publishes the station_* family and csi_stale, and any
// supervised service publishes supervisor_restart and flight_dump.
const (
	EventSupervisorRestart EventType = "supervisor_restart"
	EventSessionOpened     EventType = "session_opened"
	EventSessionResumed    EventType = "session_resumed"
	EventSessionCompleted  EventType = "session_completed"
	EventSessionFailed     EventType = "session_failed"
	EventStationAssoc      EventType = "station_assoc"
	EventStationDrop       EventType = "station_drop"
	EventCSIStale          EventType = "csi_stale"
	EventFlightDump        EventType = "flight_dump"
	EventTraceFail         EventType = "trace_fail"
)

// Event is one journal entry. The struct is flat — no maps, no nested
// pointers — so storing one into the replay ring is a plain copy and the
// no-subscriber publish path stays allocation-free. Seq, UnixNs and Node
// are stamped by the hub; everything else is the publisher's.
type Event struct {
	// Seq is the per-node monotonic sequence number, stamped by Publish.
	// Subscribers (and the aggregator) use it to assert ordering and detect
	// gaps after a replay.
	Seq uint64 `json:"seq"`
	// UnixNs is the hub-clock publish time.
	UnixNs int64 `json:"unix_ns"`
	// Node is the hub's node name ("gw", "ap", "rx", ...).
	Node string `json:"node,omitempty"`
	// Type is the event vocabulary entry.
	Type EventType `json:"type"`
	// Session carries the session ID for session_* events.
	Session uint64 `json:"session,omitempty"`
	// Station and Slot carry the station identity for station_* events.
	Station uint16 `json:"station,omitempty"`
	Slot    uint8  `json:"slot,omitempty"`
	// Packet carries the packet ID for trace_fail events.
	Packet uint64 `json:"packet,omitempty"`
	// Block names the flowgraph block for supervisor_restart.
	Block string `json:"block,omitempty"`
	// Attempt is the restart attempt number for supervisor_restart.
	Attempt int `json:"attempt,omitempty"`
	// Reason carries the failure/teardown taxonomy string.
	Reason string `json:"reason,omitempty"`
	// Bytes carries a byte count where the event has one (session totals).
	Bytes int64 `json:"bytes,omitempty"`
	// File names the artifact for flight_dump events.
	File string `json:"file,omitempty"`
}

// Frame is one server-sent-events frame: a named event and its JSON
// payload. Event is "hello", "journal" or "metrics".
type Frame struct {
	Event string
	Data  []byte
}

// Hello is the first frame every subscriber receives.
type Hello struct {
	Node string `json:"node"`
	// SnapshotMs is the metric snapshot cadence in milliseconds.
	SnapshotMs int64 `json:"snapshot_ms"`
	// Seq is the node's journal sequence at subscribe time; replayed
	// events carry sequence numbers at or below it.
	Seq uint64 `json:"seq"`
}

// Config assembles a Hub. Only Node is required; a nil Registry streams
// journal events only.
type Config struct {
	// Node is the identity stamped on every event and snapshot.
	Node string
	// Registry is the metrics root the snapshot ticks gather.
	Registry *obs.Registry
	// Tracer, when set, is scanned on each snapshot tick: traces that
	// finished failed since the previous tick surface as trace_fail
	// journal events.
	Tracer *obs.Tracer
	// Clock injects time; nil is the system clock.
	Clock clock.Clock
	// SnapshotPeriod is the metric snapshot cadence. Default 1s.
	SnapshotPeriod time.Duration
	// QueueDepth bounds each subscriber's frame queue. A subscriber whose
	// queue fills is dropped. Default 256.
	QueueDepth int
	// JournalDepth sizes the replay ring handed to new subscribers.
	// Default 256.
	JournalDepth int
}

func (c Config) withDefaults() Config {
	c.Clock = clock.Or(c.Clock)
	if c.SnapshotPeriod <= 0 {
		c.SnapshotPeriod = time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.JournalDepth <= 0 {
		c.JournalDepth = 256
	}
	return c
}

// Hub is the per-node subscription fan-out. All methods are safe for
// concurrent use, and every method no-ops on a nil *Hub so instrumented
// packages wire it unconditionally.
type Hub struct {
	cfg Config
	clk clock.Clock

	// Self-telemetry (nil-safe instruments when no registry is configured).
	gSubs    *obs.Gauge
	cEvents  *obs.Counter
	cDropped *obs.Counter

	mu     sync.Mutex
	closed bool
	seq    uint64
	subs   map[*Subscriber]struct{}
	ring   []Event // preallocated replay ring
	ringN  uint64  // total events ever published
	diff   differ
	// lastTraceID is the newest trace ring ID already scanned for
	// trace_fail events.
	lastTraceID uint64
}

// NewHub returns a hub over cfg. Self-telemetry (subscriber gauge, event
// and dropped-subscriber counters) registers on cfg.Registry when present.
func NewHub(cfg Config) *Hub {
	cfg = cfg.withDefaults()
	h := &Hub{
		cfg:  cfg,
		clk:  cfg.Clock,
		subs: make(map[*Subscriber]struct{}),
		ring: make([]Event, cfg.JournalDepth),
	}
	if reg := cfg.Registry; reg != nil {
		h.gSubs = reg.Gauge("mimonet_stream_subscribers", "live stream subscribers")
		h.cEvents = reg.Counter("mimonet_stream_events_total", "journal events published")
		h.cDropped = reg.Counter("mimonet_stream_dropped_subscribers_total", "subscribers dropped for stalling with a full queue")
	}
	return h
}

// Node returns the hub's node identity ("" on nil).
func (h *Hub) Node() string {
	if h == nil {
		return ""
	}
	return h.cfg.Node
}

// Publish stamps ev with the node identity, the next sequence number and
// the hub-clock time, stores it in the replay ring, and fans it out to
// every subscriber. With no subscriber attached the call is
// allocation-free: the event is copied into the preallocated ring and
// nothing is encoded. Safe on a nil hub.
func (h *Hub) Publish(ev Event) {
	if h == nil {
		return
	}
	h.cEvents.Inc()
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	ev.Node = h.cfg.Node
	ev.UnixNs = h.clk.Now().UnixNano()
	h.ring[h.ringN%uint64(len(h.ring))] = ev
	h.ringN++
	if len(h.subs) > 0 {
		if data, err := json.Marshal(ev); err == nil {
			h.broadcastLocked(Frame{Event: "journal", Data: data})
		}
	}
	h.mu.Unlock()
}

// broadcastLocked offers f to every subscriber without ever blocking: a
// subscriber whose bounded queue is full is stalled, so it is removed and
// its channel closed — the slow-subscriber drop policy. Caller holds h.mu.
func (h *Hub) broadcastLocked(f Frame) {
	for s := range h.subs {
		select {
		case s.ch <- f:
		default:
			delete(h.subs, s)
			s.dropped.Store(true)
			close(s.ch)
			h.cDropped.Inc()
		}
	}
	h.gSubs.Set(float64(len(h.subs)))
}

// Subscriber is one attached stream consumer. Frames arrive on C; the
// channel closes when the subscriber is dropped for stalling, the hub
// closes, or Close is called.
type Subscriber struct {
	// C delivers frames in publish order.
	C <-chan Frame

	hub     *Hub
	ch      chan Frame
	dropped atomic.Bool
}

// DroppedSlow reports whether the hub dropped this subscriber because its
// queue filled. Meaningful once C is closed.
func (s *Subscriber) DroppedSlow() bool { return s.dropped.Load() }

// Close detaches the subscriber. Idempotent; safe concurrently with a hub
// drop (whoever removes the subscriber from the hub closes the channel, so
// it is closed exactly once).
func (s *Subscriber) Close() {
	h := s.hub
	h.mu.Lock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.ch)
		h.gSubs.Set(float64(len(h.subs)))
	}
	h.mu.Unlock()
}

// ErrClosed is returned by Subscribe after the hub has been closed.
var ErrClosed = errors.New("stream: hub closed")

// Subscribe attaches a new consumer. The queue is pre-seeded with a hello
// frame, a replay of the journal ring (oldest first), and — when a
// registry is configured — one full (non-delta) metric snapshot, so a
// late subscriber starts from a complete picture before live deltas and
// events flow. The queue is sized QueueDepth beyond the seed, so the seed
// itself can never trip the drop policy.
func (h *Hub) Subscribe() (*Subscriber, error) {
	if h == nil {
		return nil, ErrClosed
	}
	// Gather outside the lock: a full snapshot can be large and the
	// publish path must not wait on it.
	var fullFrame *Frame
	if h.cfg.Registry != nil {
		msg := MetricsMsg{
			Node:   h.cfg.Node,
			UnixNs: h.clk.Now().UnixNano(),
			Full:   true,
			Points: allPoints(h.cfg.Registry.Gather()),
		}
		if data, err := json.Marshal(msg); err == nil {
			fullFrame = &Frame{Event: "metrics", Data: data}
		}
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	replay := h.replayLocked()
	s := &Subscriber{hub: h, ch: make(chan Frame, h.cfg.QueueDepth+len(replay)+2)}
	s.C = s.ch
	hello, err := json.Marshal(Hello{
		Node:       h.cfg.Node,
		SnapshotMs: h.cfg.SnapshotPeriod.Milliseconds(),
		Seq:        h.seq,
	})
	if err != nil {
		return nil, err
	}
	s.ch <- Frame{Event: "hello", Data: hello}
	for _, ev := range replay {
		if data, err := json.Marshal(ev); err == nil {
			s.ch <- Frame{Event: "journal", Data: data}
		}
	}
	if fullFrame != nil {
		s.ch <- *fullFrame
	}
	h.subs[s] = struct{}{}
	h.gSubs.Set(float64(len(h.subs)))
	return s, nil
}

// replayLocked copies the journal ring oldest-first. Caller holds h.mu.
func (h *Hub) replayLocked() []Event {
	n := uint64(len(h.ring))
	fill := h.ringN
	if fill > n {
		fill = n
	}
	if fill == 0 {
		return nil
	}
	out := make([]Event, 0, fill)
	for i := h.ringN - fill; i < h.ringN; i++ {
		out = append(out, h.ring[i%n])
	}
	return out
}

// Subscribers returns the live subscriber count.
func (h *Hub) Subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Close drops every subscriber and refuses further subscriptions. Publish
// after Close still journals (the ring survives for post-mortems) but fans
// out to nobody. Idempotent.
func (h *Hub) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
	h.gSubs.Set(0)
	h.mu.Unlock()
}

// Run drives the snapshot cadence until ctx is done: on every tick of the
// hub clock, gather the registry, broadcast the points that changed since
// the previous tick, and surface newly-failed traces as trace_fail journal
// events. With no subscriber attached a tick does nothing — no gather, no
// diff, no encode.
func (h *Hub) Run(ctx context.Context) {
	if h == nil {
		return
	}
	tk := h.clk.NewTicker(h.cfg.SnapshotPeriod)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
			h.Tick()
		}
	}
}

// Tick runs one snapshot round immediately — the seam Run loops over,
// exported so tests (and one-shot tools) can force a snapshot without a
// clock.
func (h *Hub) Tick() {
	if h == nil {
		return
	}
	h.mu.Lock()
	idle := len(h.subs) == 0
	h.mu.Unlock()
	if idle {
		return
	}
	if h.cfg.Registry != nil {
		snap := h.cfg.Registry.Gather()
		h.mu.Lock()
		pts := h.diff.delta(snap)
		if len(pts) > 0 {
			msg := MetricsMsg{Node: h.cfg.Node, UnixNs: h.clk.Now().UnixNano(), Points: pts}
			if data, err := json.Marshal(msg); err == nil {
				h.broadcastLocked(Frame{Event: "metrics", Data: data})
			}
		}
		h.mu.Unlock()
	}
	if h.cfg.Tracer != nil {
		h.scanTraces()
	}
}

// scanTraces publishes a trace_fail event for every trace that finished
// failed since the last scan.
func (h *Hub) scanTraces() {
	snaps := h.cfg.Tracer.Snapshots() // newest first
	h.mu.Lock()
	last := h.lastTraceID
	newest := last
	var failed []obs.TraceSnapshot
	for _, t := range snaps {
		if t.ID <= last {
			break
		}
		if t.ID > newest {
			newest = t.ID
		}
		if t.Done && !t.OK {
			failed = append(failed, t)
		}
	}
	h.lastTraceID = newest
	h.mu.Unlock()
	// Oldest first, so journal order matches trace order.
	for i := len(failed) - 1; i >= 0; i-- {
		h.Publish(Event{Type: EventTraceFail, Packet: failed[i].PacketID, Reason: "trace_failed"})
	}
}
