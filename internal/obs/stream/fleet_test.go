package stream_test

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/stream"
)

func journalMsg(node string, ev stream.Event) stream.Msg {
	return stream.Msg{Node: node, Kind: "journal", Event: &ev}
}

func metricsMsg(node string, points ...stream.MetricPoint) stream.Msg {
	return stream.Msg{Node: node, Kind: "metrics", Metrics: &stream.MetricsMsg{Node: node, Points: points}}
}

func nodeView(t *testing.T, f *stream.Fleet, name string) stream.NodeView {
	t.Helper()
	for _, n := range f.Snapshot() {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %q not in fleet snapshot", name)
	panic("unreachable")
}

func TestFleetSessionLifecycle(t *testing.T) {
	f := stream.NewFleet()
	f.Apply(journalMsg("gw", stream.Event{Seq: 1, Type: stream.EventSessionOpened, Session: 9, Bytes: 1000}))
	f.Apply(journalMsg("gw", stream.Event{Seq: 2, Type: stream.EventSessionResumed, Session: 9}))
	f.Apply(journalMsg("gw", stream.Event{Seq: 3, Type: stream.EventSessionCompleted, Session: 9, Bytes: 1000}))
	f.Apply(journalMsg("gw", stream.Event{Seq: 4, Type: stream.EventSessionFailed, Session: 10, Reason: "expired"}))

	n := nodeView(t, f, "gw")
	if n.Seq != 4 || n.Events != 4 || n.OrderViolations != 0 {
		t.Fatalf("node = %+v", n)
	}
	s := n.Sessions[9]
	if s == nil || s.State != "completed" || s.Resumes != 1 || s.Bytes != 1000 {
		t.Fatalf("session 9 = %+v", s)
	}
	if s := n.Sessions[10]; s == nil || s.State != "failed" || s.Reason != "expired" {
		t.Fatalf("session 10 = %+v", s)
	}
}

func TestFleetStationMetricJoin(t *testing.T) {
	f := stream.NewFleet()
	f.Apply(journalMsg("ap", stream.Event{Seq: 1, Type: stream.EventStationAssoc, Station: 17, Slot: 3}))
	f.Apply(journalMsg("ap", stream.Event{Seq: 2, Type: stream.EventCSIStale, Station: 17}))
	f.Apply(metricsMsg("ap",
		stream.MetricPoint{Name: "mimonet_ap_station_per", Labels: map[string]string{"slot": "03"}, Kind: obs.KindGauge, Value: 0.25},
		stream.MetricPoint{Name: "mimonet_ap_station_tx_bytes_total", Labels: map[string]string{"slot": "03"}, Kind: obs.KindCounter, Value: 8192},
		stream.MetricPoint{Name: "mimonet_ap_station_csi_age_seconds", Labels: map[string]string{"slot": "03"}, Kind: obs.KindGauge, Value: 0.5},
		// A slot nobody associated on: joins nothing, still lands in Metrics.
		stream.MetricPoint{Name: "mimonet_ap_station_per", Labels: map[string]string{"slot": "09"}, Kind: obs.KindGauge, Value: 1},
	))

	n := nodeView(t, f, "ap")
	st := n.Stations[17]
	if st == nil || st.Slot != 3 || st.PER != 0.25 || st.TxBytes != 8192 || st.CSIAgeS != 0.5 {
		t.Fatalf("station 17 = %+v", st)
	}
	// A fresh CSI age metric clears the stale flag the journal event set.
	if st.CSIStale {
		t.Fatal("csi_age metric did not clear the stale flag")
	}
	if n.Snapshots != 1 || len(n.Metrics) != 4 {
		t.Fatalf("snapshots=%d metrics=%d", n.Snapshots, len(n.Metrics))
	}

	f.Apply(journalMsg("ap", stream.Event{Seq: 3, Type: stream.EventStationDrop, Station: 17, Reason: "idle-timeout"}))
	if st := nodeView(t, f, "ap").Stations[17]; st.State != "dropped" {
		t.Fatalf("after drop: %+v", st)
	}
}

func TestFleetOrderViolationCounting(t *testing.T) {
	f := stream.NewFleet()
	f.Apply(journalMsg("gw", stream.Event{Seq: 5, Type: stream.EventSessionOpened, Session: 1}))
	f.Apply(journalMsg("gw", stream.Event{Seq: 4, Type: stream.EventSessionOpened, Session: 2})) // regression
	f.Apply(journalMsg("gw", stream.Event{Seq: 5, Type: stream.EventSessionOpened, Session: 3})) // duplicate
	f.Apply(journalMsg("gw", stream.Event{Seq: 6, Type: stream.EventSessionOpened, Session: 4}))

	n := nodeView(t, f, "gw")
	if n.OrderViolations != 2 || n.Seq != 6 || n.Events != 4 {
		t.Fatalf("node = %+v", n)
	}
	// Supervisor restarts tally separately per node.
	f.Apply(journalMsg("gw", stream.Event{Seq: 7, Type: stream.EventSupervisorRestart, Block: "sync", Attempt: 1}))
	if n := nodeView(t, f, "gw"); n.Restarts != 1 {
		t.Fatalf("restarts = %d", n.Restarts)
	}
}

func TestFleetSnapshotIsDeepCopy(t *testing.T) {
	f := stream.NewFleet()
	f.Apply(journalMsg("gw", stream.Event{Seq: 1, Type: stream.EventSessionOpened, Session: 1}))
	snap := f.Snapshot()
	snap[0].Sessions[1].State = "mutated"
	if n := nodeView(t, f, "gw"); n.Sessions[1].State != "open" {
		t.Fatal("Snapshot aliases internal state")
	}
	// Nodes come out sorted by name.
	f.Apply(journalMsg("ap", stream.Event{Seq: 1, Type: stream.EventStationAssoc, Station: 1}))
	views := f.Snapshot()
	if len(views) != 2 || views[0].Name != "ap" || views[1].Name != "gw" {
		t.Fatalf("snapshot order = %+v", []string{views[0].Name, views[1].Name})
	}
}
