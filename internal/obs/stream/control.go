package stream

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Control is the node control API mounted on obs.Server under /api/: a
// small set of hooks each service binary fills in for what it actually
// runs. A nil hook answers 404, so the surface is uniform across node
// roles without every role faking every verb.
//
//	GET  /api/sessions        list live sessions (session gateway)
//	GET  /api/stations        list associated stations (AP)
//	POST /api/transfer?bytes= start a loopback transfer through the
//	                          gateway; answers the session ID immediately
//	POST /api/dump?reason=    trigger a flight-recorder dump
type Control struct {
	// ListSessions returns the gateway's live session table.
	ListSessions func() any
	// ListStations returns the AP's association table.
	ListStations func() any
	// StartTransfer launches a transfer of n bytes and returns a JSON-able
	// description (at minimum the session ID).
	StartTransfer func(n int) (any, error)
	// FlightDump triggers an on-demand evidence dump and returns the
	// artifact path.
	FlightDump func(reason string) (string, error)
}

// Handler returns the /api/ route mux.
func (c *Control) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/sessions", func(w http.ResponseWriter, r *http.Request) {
		if c.ListSessions == nil {
			http.Error(w, "no session gateway on this node", http.StatusNotFound)
			return
		}
		controlJSON(w, c.ListSessions())
	})
	mux.HandleFunc("/api/stations", func(w http.ResponseWriter, r *http.Request) {
		if c.ListStations == nil {
			http.Error(w, "no access point on this node", http.StatusNotFound)
			return
		}
		controlJSON(w, c.ListStations())
	})
	mux.HandleFunc("/api/transfer", func(w http.ResponseWriter, r *http.Request) {
		if c.StartTransfer == nil {
			http.Error(w, "no session gateway on this node", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		n := 64 * 1024
		if v := r.URL.Query().Get("bytes"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed <= 0 {
				http.Error(w, "bytes must be a positive integer", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		res, err := c.StartTransfer(n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		controlJSON(w, res)
	})
	mux.HandleFunc("/api/dump", func(w http.ResponseWriter, r *http.Request) {
		if c.FlightDump == nil {
			http.Error(w, "no flight recorder on this node", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "control-api"
		}
		file, err := c.FlightDump(reason)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		controlJSON(w, map[string]string{"file": file, "reason": reason})
	})
	return mux
}

func controlJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
