package stream_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/obs/stream"
)

func decodeEvent(t *testing.T, f stream.Frame) stream.Event {
	t.Helper()
	if f.Event != "journal" {
		t.Fatalf("frame type = %q, want journal", f.Event)
	}
	var ev stream.Event
	if err := json.Unmarshal(f.Data, &ev); err != nil {
		t.Fatalf("journal decode: %v", err)
	}
	return ev
}

func decodeMetrics(t *testing.T, f stream.Frame) stream.MetricsMsg {
	t.Helper()
	if f.Event != "metrics" {
		t.Fatalf("frame type = %q, want metrics", f.Event)
	}
	var m stream.MetricsMsg
	if err := json.Unmarshal(f.Data, &m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	return m
}

// findPoint digs a series out of a snapshot by family name; the hub's own
// self-metrics ride along in every frame, so tests must select rather than
// index.
func findPoint(points []stream.MetricPoint, name string) *stream.MetricPoint {
	for i := range points {
		if points[i].Name == name {
			return &points[i]
		}
	}
	return nil
}

// recv pulls one frame with a liberal timeout so a broken hub fails the test
// instead of hanging it.
func recv(t *testing.T, c <-chan stream.Frame) stream.Frame {
	t.Helper()
	select {
	case f, ok := <-c:
		if !ok {
			t.Fatal("subscriber channel closed unexpectedly")
		}
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("no frame within 5s")
	}
	panic("unreachable")
}

func TestJournalReplayAndLive(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	h := stream.NewHub(stream.Config{Node: "gw", Clock: clk})
	for i := 1; i <= 3; i++ {
		h.Publish(stream.Event{Type: stream.EventSessionOpened, Session: uint64(i)})
	}
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	f := recv(t, sub.C)
	if f.Event != "hello" {
		t.Fatalf("first frame = %q, want hello", f.Event)
	}
	var hello stream.Hello
	if err := json.Unmarshal(f.Data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Node != "gw" || hello.Seq != 3 {
		t.Fatalf("hello = %+v, want node gw seq 3", hello)
	}

	// Replay: the pre-subscribe journal, oldest first, stamped sequences.
	for i := 1; i <= 3; i++ {
		ev := decodeEvent(t, recv(t, sub.C))
		if ev.Seq != uint64(i) || ev.Session != uint64(i) || ev.Node != "gw" {
			t.Fatalf("replay %d = %+v", i, ev)
		}
		if ev.UnixNs != time.Unix(3000, 0).UnixNano() {
			t.Fatalf("replay %d stamped %d, want the fake clock", i, ev.UnixNs)
		}
	}

	// Live publishes keep flowing after the replay.
	h.Publish(stream.Event{Type: stream.EventSessionCompleted, Session: 9, Bytes: 512})
	ev := decodeEvent(t, recv(t, sub.C))
	if ev.Seq != 4 || ev.Type != stream.EventSessionCompleted || ev.Bytes != 512 {
		t.Fatalf("live event = %+v", ev)
	}
}

func TestJournalRingKeepsNewest(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	h := stream.NewHub(stream.Config{Node: "gw", Clock: clk, JournalDepth: 4})
	for i := 1; i <= 10; i++ {
		h.Publish(stream.Event{Type: stream.EventSessionOpened, Session: uint64(i)})
	}
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recv(t, sub.C) // hello
	for want := uint64(7); want <= 10; want++ {
		ev := decodeEvent(t, recv(t, sub.C))
		if ev.Seq != want {
			t.Fatalf("replay seq = %d, want %d", ev.Seq, want)
		}
	}
}

// TestPublishNoSubscribersAllocFree is the zero-cost gate: with nobody
// attached, Publish must not allocate — events land in the preallocated
// ring and nothing is encoded.
func TestPublishNoSubscribersAllocFree(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	reg := obs.NewRegistry()
	h := stream.NewHub(stream.Config{Node: "gw", Registry: reg, Clock: clk})
	ev := stream.Event{Type: stream.EventSessionCompleted, Session: 7, Bytes: 4096, Reason: "idle-timeout"}
	if n := testing.AllocsPerRun(1000, func() { h.Publish(ev) }); n != 0 {
		t.Fatalf("Publish with no subscribers allocates %.1f per call, want 0", n)
	}
}

// TestSlowSubscriberDropped is the backpressure regression (run under -race
// in CI): a stalled consumer is detached once its bounded queue fills, its
// channel closes exactly once, and neither the publisher nor a healthy
// subscriber ever blocks on it.
func TestSlowSubscriberDropped(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	// No registry: the attach sequence is just the hello frame, so the
	// journal arithmetic below is exact.
	h := stream.NewHub(stream.Config{Node: "gw", Clock: clk, QueueDepth: 4})
	slow, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	if f := recv(t, fast.C); f.Event != "hello" {
		t.Fatalf("fast first frame = %q", f.Event)
	}

	// Publish far past the slow queue's bound, draining fast in lockstep so
	// only the stalled subscriber ever fills. The loop finishing at all is
	// the publisher-never-blocks assertion.
	const publishes = 100
	for i := 0; i < publishes; i++ {
		h.Publish(stream.Event{Type: stream.EventStationAssoc, Station: uint16(i + 1)})
		ev := decodeEvent(t, recv(t, fast.C))
		if ev.Station != uint16(i+1) {
			t.Fatalf("fast got station %d at publish %d", ev.Station, i+1)
		}
	}

	if !slow.DroppedSlow() {
		t.Fatal("slow subscriber not marked dropped")
	}
	if n := h.Subscribers(); n != 1 {
		t.Fatalf("subscribers = %d, want 1 (slow dropped)", n)
	}
	// The slow channel drains its queued frames and then closes.
	closed := false
	for i := 0; i < publishes+8; i++ {
		if _, ok := <-slow.C; !ok {
			closed = true
			break
		}
	}
	if !closed {
		t.Fatal("slow subscriber channel never closed after drop")
	}
	// Close on an already-dropped subscriber must be a safe no-op (single
	// closer invariant).
	slow.Close()
}

func TestTickDeltas(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	reg := obs.NewRegistry()
	h := stream.NewHub(stream.Config{Node: "gw", Registry: reg, Clock: clk})
	c := reg.Counter("mimonet_test_total", "test counter")
	c.Add(3)

	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recv(t, sub.C) // hello

	full := decodeMetrics(t, recv(t, sub.C))
	if !full.Full {
		t.Fatalf("first metrics frame not full: %+v", full)
	}
	if p := findPoint(full.Points, "mimonet_test_total"); p == nil || p.Value != 3 {
		t.Fatalf("full snapshot missing the counter: %+v", full.Points)
	}

	// First tick: the differ starts empty, so the counter shows as changed.
	h.Tick()
	d := decodeMetrics(t, recv(t, sub.C))
	if d.Full {
		t.Fatal("tick emitted a full snapshot, want delta")
	}
	if p := findPoint(d.Points, "mimonet_test_total"); p == nil || p.Delta != 3 {
		t.Fatalf("first delta = %+v", d.Points)
	}

	// Quiet tick: nothing changed, nothing sent.
	h.Tick()
	select {
	case f := <-sub.C:
		t.Fatalf("quiet tick emitted %q frame", f.Event)
	default:
	}

	c.Add(2)
	h.Tick()
	d = decodeMetrics(t, recv(t, sub.C))
	if len(d.Points) != 1 || d.Points[0].Delta != 2 || d.Points[0].Value != 5 {
		t.Fatalf("second delta = %+v", d.Points)
	}
}

func TestRunSnapshotCadenceOnFakeClock(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	reg := obs.NewRegistry()
	h := stream.NewHub(stream.Config{Node: "gw", Registry: reg, Clock: clk, SnapshotPeriod: time.Second})
	c := reg.Counter("mimonet_test_total", "test counter")

	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recv(t, sub.C) // hello (no full frame: counter exists but Subscribe sends one)
	recv(t, sub.C) // full metrics

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { h.Run(ctx); close(done) }()
	clk.BlockUntilWaiters(1) // the snapshot ticker is armed

	c.Add(7)
	clk.Advance(time.Second) // exactly one snapshot period
	d := decodeMetrics(t, recv(t, sub.C))
	if p := findPoint(d.Points, "mimonet_test_total"); p == nil || p.Delta != 7 {
		t.Fatalf("delta after one period = %+v", d.Points)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on ctx cancel")
	}
}

func TestTickSurfacesFailedTraces(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	tracer := obs.NewTracer(8, clk)
	h := stream.NewHub(stream.Config{Node: "rx", Tracer: tracer, Clock: clk})
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recv(t, sub.C) // hello

	ok := tracer.Start()
	ok.SetPacketID(41)
	ok.Finish(true)
	bad := tracer.Start()
	bad.SetPacketID(42)
	bad.Finish(false)

	h.Tick()
	ev := decodeEvent(t, recv(t, sub.C))
	if ev.Type != stream.EventTraceFail || ev.Packet != 42 {
		t.Fatalf("trace event = %+v", ev)
	}
	// Already-scanned traces do not resurface.
	h.Tick()
	select {
	case f := <-sub.C:
		t.Fatalf("second tick re-emitted %q", f.Event)
	default:
	}
}

func TestHubCloseSemantics(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	h := stream.NewHub(stream.Config{Node: "gw", Clock: clk})
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	recv(t, sub.C) // hello
	h.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("subscriber channel still open after hub Close")
	}
	if _, err := h.Subscribe(); err == nil {
		t.Fatal("Subscribe after Close succeeded")
	}
	h.Publish(stream.Event{Type: stream.EventSessionOpened}) // must not panic
	h.Close()                                                // idempotent
}

func TestNilHubIsSafe(t *testing.T) {
	var h *stream.Hub
	h.Publish(stream.Event{Type: stream.EventSessionOpened})
	h.Tick()
	h.Close()
	h.Run(context.Background())
	if h.Subscribers() != 0 || h.Node() != "" {
		t.Fatal("nil hub reported state")
	}
	if _, err := h.Subscribe(); err == nil {
		t.Fatal("nil hub Subscribe succeeded")
	}
}
