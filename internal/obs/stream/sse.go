package stream

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// Handler serves the hub as a server-sent-events stream (RFC-less but
// ubiquitous: text/event-stream frames of "event:" + "data:" lines). Each
// connection gets the standard attach sequence — hello, journal replay,
// full metric snapshot — then live frames until the client disconnects,
// the hub closes, or the subscriber stalls past its bounded queue and is
// dropped.
//
// A stalled HTTP client blocks only its own handler goroutine in Write;
// the hub has already detached the subscriber, so publishers and healthy
// subscribers never notice.
func Handler(h *Hub) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		sub, err := h.Subscribe()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer sub.Close()
		hdr := w.Header()
		hdr.Set("Content-Type", "text/event-stream")
		hdr.Set("Cache-Control", "no-cache")
		hdr.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case <-r.Context().Done():
				return
			case f, ok := <-sub.C:
				if !ok {
					return
				}
				if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.Event, f.Data); err != nil {
					return
				}
				fl.Flush()
			}
		}
	})
}

// ReadSSE parses a text/event-stream from r and invokes fn for every
// complete frame, until EOF (nil return), a read error, or fn returning an
// error. Comment lines (":" prefix) and unknown fields are skipped.
func ReadSSE(r io.Reader, fn func(Frame) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var event string
	var data bytes.Buffer
	flush := func() error {
		if event == "" && data.Len() == 0 {
			return nil
		}
		f := Frame{Event: event, Data: append([]byte(nil), data.Bytes()...)}
		event = ""
		data.Reset()
		return fn(f)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case line[0] == ':':
			// comment / keep-alive
		case bytes.HasPrefix([]byte(line), []byte("event:")):
			event = trimField(line[len("event:"):])
		case bytes.HasPrefix([]byte(line), []byte("data:")):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(trimField(line[len("data:"):]))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

// trimField strips the single optional leading space SSE allows after the
// field colon.
func trimField(s string) string {
	if len(s) > 0 && s[0] == ' ' {
		return s[1:]
	}
	return s
}
