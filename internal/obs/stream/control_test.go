package stream_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs/stream"
)

func controlDo(t *testing.T, srv *httptest.Server, method, path string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestControlNilHooksAnswer404(t *testing.T) {
	srv := httptest.NewServer((&stream.Control{}).Handler())
	defer srv.Close()
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/api/sessions"},
		{http.MethodGet, "/api/stations"},
		{http.MethodPost, "/api/transfer"},
		{http.MethodPost, "/api/dump"},
	} {
		if code, _ := controlDo(t, srv, tc.method, tc.path); code != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", tc.method, tc.path, code)
		}
	}
}

func TestControlListAndTransfer(t *testing.T) {
	var gotBytes int
	ctl := &stream.Control{
		ListSessions: func() any { return []map[string]any{{"id": 3, "state": "open"}} },
		StartTransfer: func(n int) (any, error) {
			gotBytes = n
			return map[string]any{"session": 42, "bytes": n}, nil
		},
		FlightDump: func(reason string) (string, error) {
			return "/tmp/dump-" + reason + ".jsonl", nil
		},
	}
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	code, body := controlDo(t, srv, http.MethodGet, "/api/sessions")
	if code != http.StatusOK || !strings.Contains(body, `"state": "open"`) {
		t.Fatalf("sessions = %d %q", code, body)
	}

	// Transfer: POST required, bytes parsed, default applied.
	if code, _ := controlDo(t, srv, http.MethodGet, "/api/transfer"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET transfer = %d, want 405", code)
	}
	code, body = controlDo(t, srv, http.MethodPost, "/api/transfer?bytes=4096")
	if code != http.StatusOK {
		t.Fatalf("transfer = %d %q", code, body)
	}
	var tr struct {
		Session int `json:"session"`
		Bytes   int `json:"bytes"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Session != 42 || tr.Bytes != 4096 || gotBytes != 4096 {
		t.Fatalf("transfer answered %+v (hook saw %d)", tr, gotBytes)
	}
	if code, _ := controlDo(t, srv, http.MethodPost, "/api/transfer"); code != http.StatusOK || gotBytes != 64*1024 {
		t.Fatalf("default transfer: code %d, hook saw %d, want 65536", code, gotBytes)
	}
	if code, _ := controlDo(t, srv, http.MethodPost, "/api/transfer?bytes=-1"); code != http.StatusBadRequest {
		t.Fatalf("negative bytes = %d, want 400", code)
	}

	// Dump: reason threaded through, default filled in.
	code, body = controlDo(t, srv, http.MethodPost, "/api/dump?reason=why%20not")
	if code != http.StatusOK || !strings.Contains(body, "/tmp/dump-why not.jsonl") {
		t.Fatalf("dump = %d %q", code, body)
	}
	code, body = controlDo(t, srv, http.MethodPost, "/api/dump")
	if code != http.StatusOK || !strings.Contains(body, "control-api") {
		t.Fatalf("default dump = %d %q", code, body)
	}
}

func TestControlHookErrorsBecome500(t *testing.T) {
	ctl := &stream.Control{
		StartTransfer: func(int) (any, error) { return nil, fmt.Errorf("gateway saturated") },
	}
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	code, body := controlDo(t, srv, http.MethodPost, "/api/transfer")
	if code != http.StatusInternalServerError || !strings.Contains(body, "gateway saturated") {
		t.Fatalf("transfer error = %d %q", code, body)
	}
}
