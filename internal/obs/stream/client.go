package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// NodeRef names one node's telemetry endpoint for the aggregator: BaseURL
// is the obs.Server root (e.g. http://127.0.0.1:9751); the stream is at
// BaseURL/stream and the control API under BaseURL/api/.
type NodeRef struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
}

// Msg is one decoded frame from one node, as the aggregator merges them.
// Kind is "hello", "journal", "metrics", "error" (stream failed; Err set)
// or "eof" (stream ended cleanly).
type Msg struct {
	Node    string      `json:"node"`
	Kind    string      `json:"kind"`
	Hello   *Hello      `json:"hello,omitempty"`
	Event   *Event      `json:"event,omitempty"`
	Metrics *MetricsMsg `json:"metrics,omitempty"`
	Err     string      `json:"err,omitempty"`
}

// Aggregator subscribes to N nodes concurrently and merges their streams
// into one channel of tagged messages — the engine behind mimonet-ctl.
type Aggregator struct {
	// Nodes are the endpoints to subscribe to.
	Nodes []NodeRef
	// Client is the HTTP client; nil uses http.DefaultClient. Streams are
	// long-lived, so a client with a response timeout will cut them short.
	Client *http.Client
}

// Run subscribes to every node and forwards decoded messages to out until
// all streams end or ctx is cancelled. Stream failures are reported as
// Kind "error" messages, not returned — one dead node must not take down
// the fleet view. Run does not close out.
func (a *Aggregator) Run(ctx context.Context, out chan<- Msg) error {
	if len(a.Nodes) == 0 {
		return fmt.Errorf("stream: aggregator needs at least one node")
	}
	cl := a.Client
	if cl == nil {
		cl = http.DefaultClient
	}
	var wg sync.WaitGroup
	for _, node := range a.Nodes {
		wg.Add(1)
		go func(n NodeRef) {
			defer wg.Done()
			err := a.watch(ctx, cl, n, out)
			kind, errStr := "eof", ""
			if err != nil && ctx.Err() == nil {
				kind, errStr = "error", err.Error()
			}
			emit(ctx, out, Msg{Node: n.Name, Kind: kind, Err: errStr})
		}(node)
	}
	wg.Wait()
	return nil
}

// watch runs one node's subscription: connect, parse SSE, decode, tag,
// forward.
func (a *Aggregator) watch(ctx context.Context, cl *http.Client, n NodeRef, out chan<- Msg) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.BaseURL+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := cl.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: %s answered %s", n.BaseURL, resp.Status)
	}
	return ReadSSE(resp.Body, func(f Frame) error {
		m, err := decodeFrame(n.Name, f)
		if err != nil {
			return err
		}
		if !emit(ctx, out, m) {
			return ctx.Err()
		}
		return nil
	})
}

func decodeFrame(node string, f Frame) (Msg, error) {
	m := Msg{Node: node, Kind: f.Event}
	switch f.Event {
	case "hello":
		m.Hello = new(Hello)
		return m, json.Unmarshal(f.Data, m.Hello)
	case "journal":
		m.Event = new(Event)
		return m, json.Unmarshal(f.Data, m.Event)
	case "metrics":
		m.Metrics = new(MetricsMsg)
		return m, json.Unmarshal(f.Data, m.Metrics)
	default:
		// Unknown frame types pass through undecoded so old aggregators
		// survive new servers.
		return m, nil
	}
}

func emit(ctx context.Context, out chan<- Msg, m Msg) bool {
	select {
	case out <- m:
		return true
	case <-ctx.Done():
		return false
	}
}
