package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func testServer(t *testing.T) (*Server, *Registry, *Tracer) {
	t.Helper()
	reg := NewRegistry()
	tracer := NewTracer(8, clock.NewFake(time.Unix(2000, 0)))
	srv := NewServer(reg, tracer, func() any {
		return map[string]int{"blocks": 2}
	})
	return srv, reg, tracer
}

func TestServerMetricsEndpoint(t *testing.T) {
	srv, reg, _ := testServer(t)
	reg.Counter("mimonet_rx_packets_total", "h", Label{Key: "result", Value: "ok"}).Add(3)
	reg.Gauge("mimonet_rx_snr_db", "h").Set(21)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	fams, err := ValidateExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if fams["mimonet_rx_packets_total"] != KindCounter || fams["mimonet_rx_snr_db"] != KindGauge {
		t.Fatalf("families = %v", fams)
	}
}

func TestServerHealthzEndpoint(t *testing.T) {
	srv, _, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["blocks"] != 2 {
		t.Fatalf("healthz = %v", got)
	}
}

func TestServerTraceEndpoint(t *testing.T) {
	srv, _, tracer := testServer(t)
	tr := tracer.Start()
	tr.Begin(StageSync)
	tr.Finish(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Spans) != 1 || got[0].Spans[0].Stage != StageSync {
		t.Fatalf("trace = %+v", got)
	}
}

func TestServerNilRootsServeEmpty(t *testing.T) {
	srv := NewServer(nil, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for path, want := range map[string]string{
		"/metrics": "",
		"/healthz": "{}",
		"/trace":   "[]",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(string(body)); got != want {
			t.Errorf("%s = %q, want %q", path, got, want)
		}
	}
}

func TestServerListenAndClose(t *testing.T) {
	srv, reg, _ := testServer(t)
	reg.Counter("up_total", "h").Inc()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestConcurrentScrapeWhileUpdate hammers every endpoint while writers spin
// on the same instruments and tracer. Run under -race this is the data-race
// gate for the whole exposition path.
func TestConcurrentScrapeWhileUpdate(t *testing.T) {
	srv, reg, tracer := testServer(t)
	c := reg.Counter("spin_total", "h")
	g := reg.Gauge("spin", "h")
	h := reg.Histogram("spin_seconds", "h", ExpBuckets(1e-6, 10, 6))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(seed + float64(i))
				h.Observe(seed * float64(i%100))
				tr := tracer.Start()
				tr.Begin(StageSync)
				tr.Begin(StageDemod)
				tr.Finish(i%2 == 0)
				// New families mid-scrape exercise the registration lock too.
				reg.Counter("spin_total", "h").Add(0)
			}
		}(float64(w) + 0.5)
	}
	for i := 0; i < 25; i++ {
		for _, path := range []string{"/metrics", "/healthz", "/trace"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			if path == "/metrics" {
				if _, err := ValidateExposition(resp.Body); err != nil {
					t.Fatalf("scrape %d: %v", i, err)
				}
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			resp.Body.Close()
		}
	}
	close(stop)
	wg.Wait()
}
