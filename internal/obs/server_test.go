package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func testServer(t *testing.T) (*Server, *Registry, *Tracer) {
	t.Helper()
	reg := NewRegistry()
	tracer := NewTracer(8, clock.NewFake(time.Unix(2000, 0)))
	srv := NewServer(reg, tracer, func() any {
		return map[string]int{"blocks": 2}
	})
	return srv, reg, tracer
}

func TestServerMetricsEndpoint(t *testing.T) {
	srv, reg, _ := testServer(t)
	reg.Counter("mimonet_rx_packets_total", "h", Label{Key: "result", Value: "ok"}).Add(3)
	reg.Gauge("mimonet_rx_snr_db", "h").Set(21)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	fams, err := ValidateExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if fams["mimonet_rx_packets_total"] != KindCounter || fams["mimonet_rx_snr_db"] != KindGauge {
		t.Fatalf("families = %v", fams)
	}
}

func TestServerHealthzEndpoint(t *testing.T) {
	srv, _, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["blocks"] != 2 {
		t.Fatalf("healthz = %v", got)
	}
}

func TestServerTraceEndpoint(t *testing.T) {
	srv, _, tracer := testServer(t)
	tr := tracer.Start()
	tr.Begin(StageSync)
	tr.Finish(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Spans) != 1 || got[0].Spans[0].Stage != StageSync {
		t.Fatalf("trace = %+v", got)
	}
}

func TestServerNilRootsServeEmpty(t *testing.T) {
	srv := NewServer(nil, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for path, want := range map[string]string{
		"/metrics": "",
		"/healthz": "{}",
		"/trace":   "[]",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(string(body)); got != want {
			t.Errorf("%s = %q, want %q", path, got, want)
		}
	}
}

func TestServerListenAndClose(t *testing.T) {
	srv, reg, _ := testServer(t)
	reg.Counter("up_total", "h").Inc()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestConcurrentScrapeWhileUpdate hammers every endpoint while writers spin
// on the same instruments and tracer. Run under -race this is the data-race
// gate for the whole exposition path.
func TestConcurrentScrapeWhileUpdate(t *testing.T) {
	srv, reg, tracer := testServer(t)
	c := reg.Counter("spin_total", "h")
	g := reg.Gauge("spin", "h")
	h := reg.Histogram("spin_seconds", "h", ExpBuckets(1e-6, 10, 6))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(seed + float64(i))
				h.Observe(seed * float64(i%100))
				tr := tracer.Start()
				tr.Begin(StageSync)
				tr.Begin(StageDemod)
				tr.Finish(i%2 == 0)
				// New families mid-scrape exercise the registration lock too.
				reg.Counter("spin_total", "h").Add(0)
			}
		}(float64(w) + 0.5)
	}
	for i := 0; i < 25; i++ {
		for _, path := range []string{"/metrics", "/healthz", "/trace"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			if path == "/metrics" {
				if _, err := ValidateExposition(resp.Body); err != nil {
					t.Fatalf("scrape %d: %v", i, err)
				}
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			resp.Body.Close()
		}
	}
	close(stop)
	wg.Wait()
}

// traceQuery fetches /trace with the given query string and decodes it.
func traceQuery(t *testing.T, base, query string) []TraceSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/trace%s: status %d: %s", query, resp.StatusCode, body)
	}
	var got []TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestServerTraceFilters is the golden test for the ?n= and ?failed=
// operator filters: four traces (ids 1..4; 2 and 4 failed), pulled back
// through every filter combination.
func TestServerTraceFilters(t *testing.T) {
	srv, _, tracer := testServer(t)
	for i := 1; i <= 4; i++ {
		tr := tracer.Start()
		tr.SetPacketID(uint64(100 + i))
		tr.Begin(StageSync)
		tr.Finish(i%2 == 1)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := func(snaps []TraceSnapshot) []uint64 {
		out := make([]uint64, len(snaps))
		for i, s := range snaps {
			out[i] = s.ID
		}
		return out
	}

	if got := ids(traceQuery(t, ts.URL, "")); len(got) != 4 || got[0] != 4 {
		t.Fatalf("unfiltered ids = %v, want [4 3 2 1]", got)
	}
	if got := ids(traceQuery(t, ts.URL, "?n=2")); len(got) != 2 || got[0] != 4 || got[1] != 3 {
		t.Fatalf("?n=2 ids = %v, want [4 3]", got)
	}
	failed := traceQuery(t, ts.URL, "?failed=1")
	if got := ids(failed); len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Fatalf("?failed=1 ids = %v, want [4 2]", got)
	}
	for _, s := range failed {
		if !s.Done || s.OK {
			t.Fatalf("?failed=1 returned a non-failed trace: %+v", s)
		}
	}
	if got := ids(traceQuery(t, ts.URL, "?failed=1&n=1")); len(got) != 1 || got[0] != 4 {
		t.Fatalf("?failed=1&n=1 ids = %v, want [4]", got)
	}
	if got := traceQuery(t, ts.URL, "?n=0"); len(got) != 0 {
		t.Fatalf("?n=0 ids = %v, want []", got)
	}
	resp, err := http.Get(ts.URL + "/trace?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?n=bogus status = %d, want 400", resp.StatusCode)
	}
}

func TestServerDumpEndpoint(t *testing.T) {
	srv, _, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Without a dumper: 404. With GET: 405.
	resp, err := http.Post(ts.URL+"/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dump without dumper: status %d, want 404", resp.StatusCode)
	}

	var gotReason string
	srv.SetDumper(func(reason string) (string, error) {
		gotReason = reason
		return "/tmp/flight-rx-1.json", nil
	})
	resp, err = http.Get(ts.URL + "/dump")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /dump: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/dump?reason=ci", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body["file"] != "/tmp/flight-rx-1.json" || gotReason != "ci" {
		t.Fatalf("POST /dump = %d %v (reason %q)", resp.StatusCode, body, gotReason)
	}
}

func TestServerCloseDrainsActiveScrape(t *testing.T) {
	// A Close issued while a scrape is in flight must let the handler
	// finish (graceful drain) rather than cutting the response off.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv := NewServer(NewRegistry(), nil, func() any {
		once.Do(func() { close(entered) })
		<-release
		return map[string]string{"state": "drained"}
	})
	srv.ShutdownTimeout = 5 * time.Second
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr.String() + "/healthz")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-entered
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Close must be waiting on the in-flight handler, not done already.
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v before the in-flight scrape finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape failed during shutdown: %v", r.err)
	}
	if !strings.Contains(r.body, "drained") {
		t.Errorf("in-flight scrape body = %q, want the handler's full response", r.body)
	}
	if err := <-closed; err != nil {
		t.Errorf("Close = %v", err)
	}
	// The port must be released: a fresh request is refused.
	if _, err := http.Get("http://" + addr.String() + "/healthz"); err == nil {
		t.Error("request after Close succeeded")
	}
}

func TestServerCloseAbandonsWedgedHandlerAfterDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	var once sync.Once
	srv := NewServer(NewRegistry(), nil, func() any {
		once.Do(func() { close(entered) })
		<-release // wedged until test cleanup
		return nil
	})
	srv.ShutdownTimeout = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get("http://" + addr.String() + "/healthz")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		// The deadline fired: Close reports the drain failure but the
		// listener is down either way.
		if err == nil {
			t.Log("handler drained before deadline (acceptable on a loaded machine)")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a wedged handler")
	}
}
