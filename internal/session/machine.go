// Package session is the reliable session layer of the long-running link
// gateway: many independent transfers multiplexed over one radio transport,
// each an explicit state machine with credit-based flow control on top of
// the mac ARQ window, idle and handshake deadlines on the injectable clock
// seam, and reconnect-with-resume so a dropped peer re-attaches by session
// ID and continues from the last acknowledged offset.
//
// The package splits into a pure core and the two endpoints built on it:
//
//   - Machine (this file) is the side-effect-free session state machine —
//     handshake → transfer → draining → closed — shared by both ends and
//     property-tested in isolation (any event interleaving terminates in
//     StateClosed and never panics).
//   - Gateway serves many concurrent sessions over one UDP socket, its
//     ingress/demux pumps supervised by internal/flowgraph.
//   - Client drives one transfer to completion, reconnecting through
//     capped-exponential-backoff-plus-jitter when the link dies under it.
//
// Wire messages ride version-3 radio data frames (internal/radio), so the
// datagram fault injector of internal/faults applies unchanged at the
// session layer's transport seam.
package session

// State is a session's lifecycle position. The zero value is
// StateHandshake: a session exists only once its first message arrives.
type State uint8

const (
	// StateHandshake awaits the peer's HELLO (or RESUME); nothing has been
	// negotiated yet.
	StateHandshake State = iota
	// StateTransfer moves payload chunks under ARQ and credit flow control.
	StateTransfer
	// StateDraining has verified the complete transfer and lingers briefly
	// to re-acknowledge duplicate FINs before the state is discarded.
	StateDraining
	// StateClosed is terminal; the Outcome distinguishes a completed
	// transfer from a failed-closed session.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateHandshake:
		return "handshake"
	case StateTransfer:
		return "transfer"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	}
	return "invalid"
}

// Outcome is the terminal disposition of a closed session.
type Outcome uint8

const (
	// OutcomeOpen means the session has not reached StateClosed yet.
	OutcomeOpen Outcome = iota
	// OutcomeCompleted means the transfer finished and drained cleanly.
	OutcomeCompleted
	// OutcomeFailed means the session failed closed: deadline expired,
	// retry budget exhausted, peer reset, or owner shutdown mid-transfer.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOpen:
		return "open"
	case OutcomeCompleted:
		return "completed"
	case OutcomeFailed:
		return "failed"
	}
	return "invalid"
}

// Event is a stimulus applied to the session state machine. Transport
// messages and timer expiries both reduce to these.
type Event uint8

const (
	// EvAttach: a HELLO or RESUME was accepted (initial handshake or a
	// peer re-attaching after reconnect).
	EvAttach Event = iota
	// EvProgress: in-window transfer activity (a data chunk or ack moved).
	EvProgress
	// EvFinish: the transfer verified complete (FIN with all bytes).
	EvFinish
	// EvDrained: the draining linger elapsed with nothing left to re-ack.
	EvDrained
	// EvTimeout: the state's deadline expired (handshake, idle, or drain).
	EvTimeout
	// EvReset: the peer reset the session or a retry budget was exhausted.
	EvReset
	// EvShutdown: the owning process is shutting down.
	EvShutdown
)

func (e Event) String() string {
	switch e {
	case EvAttach:
		return "attach"
	case EvProgress:
		return "progress"
	case EvFinish:
		return "finish"
	case EvDrained:
		return "drained"
	case EvTimeout:
		return "timeout"
	case EvReset:
		return "reset"
	case EvShutdown:
		return "shutdown"
	}
	return "invalid"
}

// Machine is the pure session state machine. The zero value is a fresh
// session in StateHandshake. Step never panics, ignores events that do not
// apply to the current state, and guarantees termination: every terminal
// event (timeout, reset, shutdown) moves any live state to StateClosed, and
// StateClosed absorbs everything.
type Machine struct {
	state   State
	outcome Outcome
	reason  string
}

// State returns the current lifecycle position.
func (m *Machine) State() State { return m.state }

// Outcome returns the terminal disposition (OutcomeOpen until closed).
func (m *Machine) Outcome() Outcome { return m.outcome }

// Reason returns the failure (or completion) cause recorded at close.
func (m *Machine) Reason() string { return m.reason }

// Step applies one event and returns the resulting state. reason documents
// terminal events in the failure taxonomy ("idle-timeout", "peer-reset",
// "shutdown", …) and is recorded on the transition into StateClosed.
func (m *Machine) Step(ev Event, reason string) State {
	switch m.state {
	case StateHandshake:
		switch ev {
		case EvAttach:
			m.state = StateTransfer
		case EvFinish:
			// A zero-length transfer completes without a data phase.
			m.state = StateDraining
		case EvTimeout, EvReset, EvShutdown:
			m.close(OutcomeFailed, reasonOr(reason, ev))
		}
	case StateTransfer:
		switch ev {
		case EvAttach, EvProgress:
			// Re-attach after reconnect, or in-window activity: stay.
		case EvFinish:
			m.state = StateDraining
		case EvTimeout, EvReset, EvShutdown:
			m.close(OutcomeFailed, reasonOr(reason, ev))
		}
	case StateDraining:
		switch ev {
		case EvDrained, EvTimeout:
			// The linger exists only to re-ack duplicate FINs; its expiry
			// is the clean end of a verified transfer, not a failure.
			m.close(OutcomeCompleted, reasonOr(reason, ev))
		case EvReset, EvShutdown:
			// The transfer already verified complete; a late reset or a
			// shutdown during the linger does not undo that.
			m.close(OutcomeCompleted, reasonOr(reason, ev))
		}
	case StateClosed:
		// Absorbing.
	}
	return m.state
}

func (m *Machine) close(o Outcome, reason string) {
	m.state = StateClosed
	m.outcome = o
	m.reason = reason
}

func reasonOr(reason string, ev Event) string {
	if reason != "" {
		return reason
	}
	return ev.String()
}
