package session

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/mac"
	"repro/internal/radio"
)

// Wire format. Every session message is one radio version-3 data frame
// whose payload is
//
//	kind(1) body(…) fcs(4)
//
// with the CRC-32 FCS covering kind+body, so a corrupted datagram that
// slips past the radio header checks is still rejected with a typed error
// — control messages get the same integrity guarantee the mac framing
// gives data chunks. The session ID travels in the radio header, the
// demultiplexing key; bodies are fixed-layout big-endian.
//
// Data chunks are mac-framed MPDUs (sequence number + CRC-32 FCS) whose
// payload is offset(8)‖bytes: the 12-bit mac sequence feeds the ARQ Block
// Ack window while the 64-bit offset anchors reconnect-with-resume.

// ProtocolVersion is the session-layer handshake version.
const ProtocolVersion = 1

// Kind discriminates session messages.
type Kind uint8

const (
	// KindHello opens a session: client → gateway.
	KindHello Kind = iota + 1
	// KindHelloAck accepts it, granting chunk size and credit.
	KindHelloAck
	// KindData carries one mac-framed payload chunk.
	KindData
	// KindAck acknowledges chunks: ARQ Block Ack bitmap + cumulative
	// offset + credit grant.
	KindAck
	// KindResume re-attaches a reconnecting peer to its session.
	KindResume
	// KindResumeAck confirms, reporting the last contiguous offset the
	// gateway holds so the client rewinds exactly that far.
	KindResumeAck
	// KindFin announces the transfer is fully acknowledged client-side.
	KindFin
	// KindFinAck confirms the gateway verified the complete transfer.
	KindFinAck
	// KindReset aborts the session (either direction).
	KindReset
)

func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindHelloAck:
		return "hello-ack"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindResume:
		return "resume"
	case KindResumeAck:
		return "resume-ack"
	case KindFin:
		return "fin"
	case KindFinAck:
		return "fin-ack"
	case KindReset:
		return "reset"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Chunk sizing: a DATA message must fit one radio data frame —
// kind(1) + mac overhead (28) + offset(8) + chunk + message FCS (4).
const (
	chunkOverhead = 1 + 28 + 8 + 4
	// MaxChunkBytes bounds one chunk's payload bytes.
	MaxChunkBytes = radio.MaxDataPayload - chunkOverhead
	// DefaultChunkBytes is the negotiation default.
	DefaultChunkBytes = 1024
	// maxResetReason bounds the RESET reason string on the wire.
	maxResetReason = 120
)

// Msg is a decoded session message. Fields are populated per Kind; Session
// is copied from the radio header by the transport for convenience.
type Msg struct {
	Kind    Kind
	Session uint64

	// Total is the transfer length in bytes (Hello, Resume, Fin).
	Total uint64
	// ChunkSize is the requested (Hello/Resume) or granted
	// (HelloAck/ResumeAck) chunk payload size.
	ChunkSize uint32
	// Credit is the flow-control grant: how many chunks beyond the
	// cumulative offset the sender may have outstanding
	// (HelloAck, Ack, ResumeAck).
	Credit uint16
	// Ack is the ARQ Block Ack bitmap (Ack).
	Ack mac.BlockAck
	// CumOffset is the receiver's contiguous byte high-water mark
	// (Ack, ResumeAck).
	CumOffset uint64
	// MPDU is the mac-framed chunk (Data). Aliases the decode buffer.
	MPDU []byte
	// Reason documents a Reset.
	Reason string
}

// AppendMessage serializes m (without the radio framing) onto dst.
func AppendMessage(dst []byte, m *Msg) ([]byte, error) {
	start := len(dst)
	dst = append(dst, byte(m.Kind))
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		dst = append(dst, scratch[:8]...)
	}
	u32 := func(v uint32) {
		binary.BigEndian.PutUint32(scratch[:4], v)
		dst = append(dst, scratch[:4]...)
	}
	u16 := func(v uint16) {
		binary.BigEndian.PutUint16(scratch[:2], v)
		dst = append(dst, scratch[:2]...)
	}
	switch m.Kind {
	case KindHello, KindResume:
		dst = append(dst, ProtocolVersion)
		u64(m.Total)
		u32(m.ChunkSize)
	case KindHelloAck:
		u32(m.ChunkSize)
		u16(m.Credit)
	case KindData:
		if len(m.MPDU) == 0 {
			return nil, fmt.Errorf("session: data message without an MPDU")
		}
		dst = append(dst, m.MPDU...)
	case KindAck:
		u16(m.Ack.Start)
		u64(m.Ack.Bitmap)
		u64(m.CumOffset)
		u16(m.Credit)
	case KindResumeAck:
		u32(m.ChunkSize)
		u16(m.Credit)
		u64(m.CumOffset)
	case KindFin:
		u64(m.Total)
	case KindFinAck:
	case KindReset:
		r := m.Reason
		if len(r) > maxResetReason {
			r = r[:maxResetReason]
		}
		dst = append(dst, byte(len(r)))
		dst = append(dst, r...)
	default:
		return nil, fmt.Errorf("session: cannot encode message kind %v", m.Kind)
	}
	// FCS over kind+body: AppendFCS works on a standalone slice, so wrap
	// the appended region.
	framed := bitutil.AppendFCS(dst[start:])
	return append(dst[:start], framed...), nil
}

// DecodeMessage parses one session message payload (the bytes of a radio
// data frame). The returned Msg's MPDU aliases b. Corrupt or truncated
// input yields typed errors, never panics.
func DecodeMessage(b []byte) (*Msg, error) {
	body, ok := bitutil.CheckFCS(b)
	if !ok {
		return nil, fmt.Errorf("session: message FCS check failed")
	}
	if len(body) < 1 {
		return nil, fmt.Errorf("session: empty message")
	}
	m := &Msg{Kind: Kind(body[0])}
	body = body[1:]
	need := func(n int) error {
		if len(body) < n {
			return fmt.Errorf("session: %v message body %d bytes, need %d", m.Kind, len(body), n)
		}
		return nil
	}
	switch m.Kind {
	case KindHello, KindResume:
		if err := need(13); err != nil {
			return nil, err
		}
		if body[0] != ProtocolVersion {
			return nil, fmt.Errorf("session: protocol version %d, want %d", body[0], ProtocolVersion)
		}
		m.Total = binary.BigEndian.Uint64(body[1:])
		m.ChunkSize = binary.BigEndian.Uint32(body[9:])
	case KindHelloAck:
		if err := need(6); err != nil {
			return nil, err
		}
		m.ChunkSize = binary.BigEndian.Uint32(body[0:])
		m.Credit = binary.BigEndian.Uint16(body[4:])
	case KindData:
		if len(body) == 0 {
			return nil, fmt.Errorf("session: data message without an MPDU")
		}
		m.MPDU = body
	case KindAck:
		if err := need(20); err != nil {
			return nil, err
		}
		m.Ack.Start = binary.BigEndian.Uint16(body[0:])
		m.Ack.Bitmap = binary.BigEndian.Uint64(body[2:])
		m.CumOffset = binary.BigEndian.Uint64(body[10:])
		m.Credit = binary.BigEndian.Uint16(body[18:])
	case KindResumeAck:
		if err := need(14); err != nil {
			return nil, err
		}
		m.ChunkSize = binary.BigEndian.Uint32(body[0:])
		m.Credit = binary.BigEndian.Uint16(body[4:])
		m.CumOffset = binary.BigEndian.Uint64(body[6:])
	case KindFin:
		if err := need(8); err != nil {
			return nil, err
		}
		m.Total = binary.BigEndian.Uint64(body[0:])
	case KindFinAck:
	case KindReset:
		if err := need(1); err != nil {
			return nil, err
		}
		n := int(body[0])
		if len(body) < 1+n {
			return nil, fmt.Errorf("session: reset reason %d bytes, have %d", n, len(body)-1)
		}
		m.Reason = string(body[1 : 1+n])
	default:
		return nil, fmt.Errorf("session: unknown message kind %d", uint8(m.Kind))
	}
	return m, nil
}

// EncodeChunk mac-frames one payload chunk: the 12-bit seq feeds the ARQ
// Block Ack window, the 64-bit offset anchors resume.
func EncodeChunk(seq uint16, offset uint64, data []byte) ([]byte, error) {
	if len(data) == 0 || len(data) > MaxChunkBytes {
		return nil, fmt.Errorf("session: chunk %d bytes outside [1, %d]", len(data), MaxChunkBytes)
	}
	payload := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(payload, offset)
	copy(payload[8:], data)
	f := mac.Frame{Seq: seq, Payload: payload}
	return f.Encode()
}

// DecodeChunk verifies and unpacks a mac-framed chunk. The returned data is
// an independent copy (mac.Decode copies the payload).
func DecodeChunk(mpdu []byte) (seq uint16, offset uint64, data []byte, err error) {
	f, err := mac.Decode(mpdu)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(f.Payload) < 9 {
		return 0, 0, nil, fmt.Errorf("session: chunk payload %d bytes, need ≥ 9", len(f.Payload))
	}
	return f.Seq, binary.BigEndian.Uint64(f.Payload), f.Payload[8:], nil
}
