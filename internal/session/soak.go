package session

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/montecarlo"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/radio"
)

// SoakScenarios is the default chaos rotation: every session is assigned one
// of these, round-robin. "clean" is the control; the rest exercise loss,
// corruption, delay/reorder, abrupt client death (reconnect-with-resume),
// and a link that goes permanently dark (fail-closed eviction).
var SoakScenarios = []string{"clean", "drop", "corrupt", "delay", "peer-kill", "stall"}

// soakFaults maps soak scenario names onto datagram fault configurations
// applied (independently seeded per direction) at the radio seam.
func soakFaults(name string) (faults.Scenario, bool) {
	switch name {
	case "drop":
		return faults.Scenario{Name: name, DgramLoss: 0.25, PanicAfter: -1, StallAfter: -1}, true
	case "corrupt":
		return faults.Scenario{Name: name, DgramCorrupt: 0.25, PanicAfter: -1, StallAfter: -1}, true
	case "delay":
		return faults.Scenario{Name: name, DgramReorder: 0.3, PanicAfter: -1, StallAfter: -1}, true
	default:
		// clean, peer-kill, and stall run a clean datagram path; their
		// chaos comes from the harness (Kill) or the blackhole intercept.
		return faults.Scenario{}, false
	}
}

// SoakConfig sizes a chaos soak run.
type SoakConfig struct {
	// Sessions is the number of client sessions to drive. Default 200.
	Sessions int
	// Bytes is the payload per session. Default 32 KiB.
	Bytes int
	// Parallel bounds concurrently active clients. Default min(Sessions, 64).
	Parallel int
	// Seed is the campaign seed; per-session fault streams, payloads, and
	// kill schedules all derive from it via montecarlo.ShardSeed.
	Seed int64
	// Scenarios overrides the default rotation.
	Scenarios []string
	// FlightDir receives flight-recorder dumps for failed sessions.
	// Empty disables the recorder.
	FlightDir string
	// Logger observes gateway and harness events. Nil is silent.
	Logger *slog.Logger
	// Clock injects time; nil is the system clock.
	Clock clock.Clock
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Sessions <= 0 {
		c.Sessions = 200
	}
	if c.Bytes <= 0 {
		c.Bytes = 32 * 1024
	}
	if c.Parallel <= 0 {
		c.Parallel = 64
	}
	if c.Parallel > c.Sessions {
		c.Parallel = c.Sessions
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = SoakScenarios
	}
	c.Clock = clock.Or(c.Clock)
	return c
}

// ScenarioOutcome aggregates one scenario's slice of the soak.
type ScenarioOutcome struct {
	Sessions    int `json:"sessions"`
	Completed   int `json:"completed"`
	FailedClean int `json:"failed_clean"`
	FailedDirty int `json:"failed_dirty"`
	Reconnects  int `json:"reconnects"`
}

// SoakResult is the tracked robustness artifact (SOAK_pr6.json): did every
// session end in a defined state, how fast did the resume path recover, and
// did the process return to its resource baseline.
type SoakResult struct {
	Sessions  int      `json:"sessions"`
	Bytes     int      `json:"bytes_per_session"`
	Parallel  int      `json:"parallel"`
	Seed      int64    `json:"seed"`
	Scenarios []string `json:"scenarios"`

	Completed   int `json:"completed"`
	FailedClean int `json:"failed_clean"`
	FailedDirty int `json:"failed_dirty"`
	Mismatches  int `json:"payload_mismatches"`
	Reconnects  int `json:"reconnects"`

	RecoveryP50Ms float64 `json:"recovery_p50_ms"`
	RecoveryP99Ms float64 `json:"recovery_p99_ms"`
	RecoveryMaxMs float64 `json:"recovery_max_ms"`

	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
	FDsBefore        int `json:"fds_before"`
	FDsAfter         int `json:"fds_after"`

	DurationMs  float64                    `json:"duration_ms"`
	Gateway     Stats                      `json:"gateway"`
	PerScenario map[string]ScenarioOutcome `json:"per_scenario"`
	FlightDumps []string                   `json:"flight_dumps,omitempty"`
}

// Clean reports the soak's pass condition: every session ended in a defined
// terminal state (completed, or failed closed through the taxonomy), every
// completed payload arrived intact, and no goroutines leaked.
func (r *SoakResult) Clean() bool {
	return r.FailedDirty == 0 && r.Mismatches == 0 &&
		r.Completed+r.FailedClean == r.Sessions &&
		r.GoroutinesAfter <= r.GoroutinesBefore
}

// crcSink hashes a session's reassembled stream so the soak can verify
// delivery without retaining hundreds of payloads.
type crcSink struct {
	mu  sync.Mutex
	crc uint32
	n   int
}

func (s *crcSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.crc = crc32.Update(s.crc, crc32.IEEETable, p)
	s.n += len(p)
	s.mu.Unlock()
	return len(p), nil
}

func (s *crcSink) sum() (uint32, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crc, s.n
}

// blackhole wraps an intercept chain: after budget datagrams it eats
// everything — the link going permanently dark mid-transfer.
type blackhole struct {
	mu     sync.Mutex
	budget int
}

func (b *blackhole) pass() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.budget--
	return b.budget >= 0
}

// RunSoak drives the full chaos soak: one in-process gateway, cfg.Sessions
// clients through the scenario rotation, seeded fault injection on both
// directions of the radio seam, and resource accounting around the whole
// run. It is the engine behind `mimonet-gw -soak` and experiment e23.
func RunSoak(ctx context.Context, cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	clk := cfg.Clock
	res := &SoakResult{
		Sessions:  cfg.Sessions,
		Bytes:     cfg.Bytes,
		Parallel:  cfg.Parallel,
		Seed:      cfg.Seed,
		Scenarios: cfg.Scenarios,
		PerScenario: make(map[string]ScenarioOutcome,
			len(cfg.Scenarios)),
	}
	// Prime the runtime netpoller before taking the FD baseline: the first
	// socket a Go process opens lazily creates the poller's epoll and event
	// FDs, which live for the rest of the process and would otherwise show
	// up as a spurious "+2 leak" in the before/after comparison.
	if pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}); err == nil {
		pc.Close()
	}
	res.GoroutinesBefore = runtime.NumGoroutine()
	res.FDsBefore = countFDs()
	start := clk.Now()

	var rec *flight.Recorder
	if cfg.FlightDir != "" {
		rec = flight.New(flight.Config{Dir: cfg.FlightDir, Node: "gw", OnFailure: true, Clock: clk})
	}
	reg := obs.NewRegistry()

	// Gateway-side fault injection: every outbound datagram is mangled by
	// the injector registered for its session (the header carries the ID).
	var gwInjectors sync.Map // uint64 → *faults.Injector
	gwIntercept := func(d []byte) [][]byte {
		h, err := radio.DecodeHeader(d)
		if err != nil {
			return [][]byte{d}
		}
		if inj, ok := gwInjectors.Load(h.SessionID); ok {
			return inj.(*faults.Injector).MangleDatagram(d)
		}
		return [][]byte{d}
	}

	sinks := make(map[uint64]*crcSink, cfg.Sessions)
	var sinkMu sync.Mutex
	gw, err := NewGateway(Config{
		Listen:      "127.0.0.1:0",
		Clock:       clk,
		Logger:      cfg.Logger,
		Registry:    reg,
		Recorder:    rec,
		IdleTimeout: 1500 * time.Millisecond,
		MaxSessions: cfg.Sessions + 8,
		Intercept:   gwIntercept,
		NewSink: func(id uint64) io.Writer {
			sinkMu.Lock()
			defer sinkMu.Unlock()
			s := &crcSink{}
			sinks[id] = s
			return s
		},
	})
	if err != nil {
		return nil, err
	}
	gwCtx, gwCancel := context.WithCancel(ctx)
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.Run(gwCtx) }()

	type outcome struct {
		scenario   string
		completed  bool
		clean      bool
		reconnects int
		recoveries []time.Duration
		mismatch   bool
	}
	outcomes := make([]outcome, cfg.Sessions)
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			scenario := cfg.Scenarios[i%len(cfg.Scenarios)]
			id := uint64(i) + 1
			rng := rand.New(rand.NewSource(montecarlo.ShardSeed(cfg.Seed, 4*i)))
			payload := make([]byte, cfg.Bytes)
			rng.Read(payload)
			wantCRC := crc32.ChecksumIEEE(payload)

			// Independent per-direction fault streams at the radio seam.
			var clientIntercept func([]byte) [][]byte
			if sc, ok := soakFaults(scenario); ok {
				txInj := faults.NewInjector(sc, montecarlo.ShardSeed(cfg.Seed, 4*i+1))
				rxInj := faults.NewInjector(sc, montecarlo.ShardSeed(cfg.Seed, 4*i+2))
				gwInjectors.Store(id, rxInj)
				clientIntercept = txInj.MangleDatagram
			}
			if scenario == "stall" {
				// The link goes dark after a seeded number of datagrams:
				// the client must fail closed within its budgets, the
				// gateway must evict on idle — both without leaking. The
				// gateway side darkens for free: it only ever replies to
				// datagrams, and none arrive.
				bh := &blackhole{budget: 8 + rng.Intn(24)}
				clientIntercept = func(d []byte) [][]byte {
					if bh.pass() {
						return [][]byte{d}
					}
					return nil
				}
			}

			var killer *Client // set after NewClient; intercepts fire only inside Send
			if scenario == "peer-kill" {
				// Abrupt client death mid-transfer, twice, at seeded
				// datagram counts — deterministic in link-event space, so
				// the kill always lands while the transfer is in flight.
				kills := []int{4 + rng.Intn(12), 0}
				kills[1] = kills[0] + 8 + rng.Intn(12)
				var mu sync.Mutex
				sent, next := 0, 0
				inner := clientIntercept
				clientIntercept = func(d []byte) [][]byte {
					mu.Lock()
					sent++
					kill := next < len(kills) && sent >= kills[next]
					if kill {
						next++
					}
					mu.Unlock()
					if kill {
						killer.Kill()
					}
					if inner != nil {
						return inner(d)
					}
					return [][]byte{d}
				}
			}
			c, cerr := NewClient(ClientConfig{
				Addr:      gw.Addr().String(),
				SessionID: id,
				Clock:     clk,
				Rand:      rand.New(rand.NewSource(montecarlo.ShardSeed(cfg.Seed, 4*i+3))),
				Intercept: clientIntercept,
				// Soak-tuned budgets: fail fast, recover fast.
				AckTimeout:       20 * time.Millisecond,
				HandshakeTimeout: 100 * time.Millisecond,
				HandshakeRetries: 6,
				MaxReconnects:    5,
				ReconnectBase:    5 * time.Millisecond,
				ReconnectMax:     100 * time.Millisecond,
			})
			if cerr != nil {
				outcomes[i] = outcome{scenario: scenario}
				return
			}
			killer = c
			err := c.Send(ctx, payload)
			o := outcome{scenario: scenario, reconnects: c.Reconnects, recoveries: c.Recoveries}
			if err == nil {
				o.completed = true
				o.clean = true
				sinkMu.Lock()
				sk := sinks[id]
				sinkMu.Unlock()
				if sk == nil {
					o.mismatch = true
				} else if crc, n := sk.sum(); crc != wantCRC || n != len(payload) {
					o.mismatch = true
				}
			} else if _, isSession := err.(*SessionError); isSession {
				o.clean = true
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	// Let the gateway's own eviction machinery fail the abandoned (stall)
	// sessions closed before shutting down, so the artifact records the
	// idle-timeout path rather than a shutdown sweep. Bounded: idle timeout
	// plus drain linger plus slack.
	evictBy := clk.Now().Add(gw.cfg.IdleTimeout + gw.cfg.DrainLinger + 2*time.Second)
	for gw.Stats().Active > 0 && clk.Now().Before(evictBy) {
		time.Sleep(10 * time.Millisecond) //mimonet:wallclock-ok settle loop on the real scheduler
	}
	gwCancel()
	if err := <-gwDone; err != nil {
		return nil, fmt.Errorf("session: soak gateway: %w", err)
	}
	res.Gateway = gw.Stats()
	res.DurationMs = float64(clk.Since(start)) / float64(time.Millisecond)

	var recoveries []time.Duration
	for _, o := range outcomes {
		agg := res.PerScenario[o.scenario]
		agg.Sessions++
		switch {
		case o.completed && !o.mismatch:
			res.Completed++
			agg.Completed++
		case o.clean:
			res.FailedClean++
			agg.FailedClean++
		default:
			res.FailedDirty++
			agg.FailedDirty++
		}
		if o.mismatch {
			res.Mismatches++
		}
		res.Reconnects += o.reconnects
		agg.Reconnects += o.reconnects
		recoveries = append(recoveries, o.recoveries...)
		res.PerScenario[o.scenario] = agg
	}
	sort.Slice(recoveries, func(a, b int) bool { return recoveries[a] < recoveries[b] })
	if n := len(recoveries); n > 0 {
		res.RecoveryP50Ms = float64(recoveries[n/2]) / float64(time.Millisecond)
		res.RecoveryP99Ms = float64(recoveries[min(n-1, n*99/100)]) / float64(time.Millisecond)
		res.RecoveryMaxMs = float64(recoveries[n-1]) / float64(time.Millisecond)
	}

	// The process must return to its resource baseline: wait out worker
	// unwinding, then take the final counts.
	deadline := clk.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > res.GoroutinesBefore && clk.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond) //mimonet:wallclock-ok settle loop on the real scheduler
	}
	res.GoroutinesAfter = runtime.NumGoroutine()
	res.FDsAfter = countFDs()
	if rec != nil {
		if f, err := rec.Dump("soak-final"); err == nil {
			res.FlightDumps = append(res.FlightDumps, f)
		}
	}
	return res, nil
}

// countFDs counts open file descriptors via /proc; -1 where unavailable.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
