package session

import (
	"math/rand"
	"testing"
)

func TestMachineHappyPath(t *testing.T) {
	var m Machine
	if m.State() != StateHandshake || m.Outcome() != OutcomeOpen {
		t.Fatalf("zero value: %v/%v", m.State(), m.Outcome())
	}
	m.Step(EvAttach, "")
	if m.State() != StateTransfer {
		t.Fatalf("after attach: %v", m.State())
	}
	m.Step(EvProgress, "")
	m.Step(EvFinish, "")
	if m.State() != StateDraining {
		t.Fatalf("after finish: %v", m.State())
	}
	m.Step(EvDrained, "")
	if m.State() != StateClosed || m.Outcome() != OutcomeCompleted {
		t.Fatalf("after drain: %v/%v", m.State(), m.Outcome())
	}
}

func TestMachineFailClosed(t *testing.T) {
	cases := []struct {
		ev     Event
		reason string
		want   string
	}{
		{EvTimeout, "idle-timeout", "idle-timeout"},
		{EvReset, "peer-reset", "peer-reset"},
		{EvShutdown, "", "shutdown"},
	}
	for _, c := range cases {
		var m Machine
		m.Step(EvAttach, "")
		m.Step(c.ev, c.reason)
		if m.State() != StateClosed || m.Outcome() != OutcomeFailed {
			t.Errorf("%v: %v/%v", c.ev, m.State(), m.Outcome())
		}
		if m.Reason() != c.want {
			t.Errorf("%v: reason %q, want %q", c.ev, m.Reason(), c.want)
		}
	}
}

func TestMachineDrainingCompletesRegardless(t *testing.T) {
	// Once the transfer verified complete, nothing that happens during the
	// linger can turn it into a failure.
	for _, ev := range []Event{EvDrained, EvTimeout, EvReset, EvShutdown} {
		var m Machine
		m.Step(EvAttach, "")
		m.Step(EvFinish, "")
		m.Step(ev, "")
		if m.State() != StateClosed || m.Outcome() != OutcomeCompleted {
			t.Errorf("draining + %v: %v/%v", ev, m.State(), m.Outcome())
		}
	}
}

// TestMachineAlwaysTerminates is the state-machine property test: under any
// random event interleaving the machine never panics, never leaves the
// declared state set, closes exactly once with a definite outcome, and —
// since every run ends with a terminal event — always terminates closed.
func TestMachineAlwaysTerminates(t *testing.T) {
	events := []Event{EvAttach, EvProgress, EvFinish, EvDrained, EvTimeout, EvReset, EvShutdown}
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 5000; trial++ {
		var m Machine
		steps := rng.Intn(24)
		for i := 0; i < steps; i++ {
			prev := m.State()
			ev := events[rng.Intn(len(events))]
			next := m.Step(ev, "")
			if next > StateClosed {
				t.Fatalf("trial %d: invalid state %d", trial, next)
			}
			if prev == StateClosed && next != StateClosed {
				t.Fatalf("trial %d: closed state reopened by %v", trial, ev)
			}
			if (next == StateClosed) != (m.Outcome() != OutcomeOpen) {
				t.Fatalf("trial %d: state %v with outcome %v", trial, next, m.Outcome())
			}
		}
		// A shutdown (or any terminal event) must close from every state.
		m.Step(EvShutdown, "")
		if m.State() != StateClosed {
			t.Fatalf("trial %d: shutdown left machine in %v", trial, m.State())
		}
		if m.Outcome() == OutcomeOpen {
			t.Fatalf("trial %d: closed without an outcome", trial)
		}
	}
}
