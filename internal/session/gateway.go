package session

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/flowgraph"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/stream"
	"repro/internal/radio"
)

// Config tunes a Gateway. The zero value of every optional field picks a
// production default; only Listen is required.
type Config struct {
	// Listen is the UDP address to bind (e.g. "127.0.0.1:0").
	Listen string

	// Clock is the injectable time source for all session deadlines.
	Clock clock.Clock
	// Logger receives structured session lifecycle events. Nil is silent.
	Logger *slog.Logger
	// Registry, when set, exposes gateway counters and gauges.
	Registry *obs.Registry
	// Recorder, when set, records per-session terminal evidence; failures
	// trip its OnFailure dump trigger.
	Recorder *flight.Recorder
	// Events, when set, receives the session journal — opened / resumed /
	// completed / failed transitions, supervisor restarts, and flight-dump
	// triggers — on the live telemetry stream. Nil publishes nothing (the
	// hub is nil-safe).
	Events *stream.Hub

	// HandshakeTimeout evicts a session that never completes its first
	// exchange. Default 2s.
	HandshakeTimeout time.Duration
	// IdleTimeout evicts a transfer with no datagrams at all for this
	// long — the fail-closed guarantee that an abandoned peer cannot pin
	// gateway state forever. Default 3s.
	IdleTimeout time.Duration
	// DrainLinger keeps a completed session around to re-acknowledge
	// duplicate FINs before its state is discarded. Default 200ms.
	DrainLinger time.Duration

	// CreditWindow is the flow-control grant: chunks a client may have
	// outstanding beyond the cumulative offset. Capped at 64 (the Block
	// Ack bitmap). Default 32.
	CreditWindow int
	// MaxSessions bounds concurrently live sessions; a HELLO beyond it is
	// answered with RESET "busy". Default 1024.
	MaxSessions int
	// MailboxDepth is each session worker's inbound queue; the demux drops
	// (never blocks) when a mailbox is full — UDP semantics end to end.
	// Default 64.
	MailboxDepth int

	// Intercept, when set, sees every outbound datagram before
	// transmission and returns the datagrams to actually send — the
	// faults.Injector.MangleDatagram seam, applied on the gateway's
	// transmit side. The slice passed in is a private copy.
	Intercept func(datagram []byte) [][]byte

	// NewSink supplies the destination for each session's reassembled
	// byte stream. Nil discards payloads (the soak default — delivery is
	// judged by offsets and FCS, not by retention).
	NewSink func(sessionID uint64) io.Writer
}

func (c Config) withDefaults() Config {
	c.Clock = clock.Or(c.Clock)
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 2 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 3 * time.Second
	}
	if c.DrainLinger <= 0 {
		c.DrainLinger = 200 * time.Millisecond
	}
	if c.CreditWindow <= 0 {
		c.CreditWindow = 32
	}
	if c.CreditWindow > 64 {
		c.CreditWindow = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 64
	}
	return c
}

// Stats is a point-in-time snapshot of gateway session accounting.
type Stats struct {
	Active      int64            `json:"active"`
	Opened      int64            `json:"opened"`
	Completed   int64            `json:"completed"`
	Failed      int64            `json:"failed"`
	Reconnects  int64            `json:"reconnects"`
	ResetsSent  int64            `json:"resets_sent"`
	Dropped     int64            `json:"datagrams_dropped"`
	Corrupt     int64            `json:"datagrams_corrupt"`
	WindowDrops int64            `json:"window_drops"`
	BytesStored int64            `json:"bytes_stored"`
	FailReasons map[string]int64 `json:"fail_reasons,omitempty"`
}

// SessionInfo is one live session's state as reported by the control API.
// The worker goroutine owns the underlying session; the fields here are
// mirrored through atomics after every step, so a snapshot never races it.
type SessionInfo struct {
	ID      uint64 `json:"id"`
	State   string `json:"state"`
	Bytes   uint64 `json:"bytes"`
	Total   uint64 `json:"total"`
	Resumes int    `json:"resumes"`
	// AgeSeconds is the session lifetime so far on the gateway clock.
	AgeSeconds float64 `json:"age_seconds"`
}

// Sessions snapshots every live session, sorted by ID — the control API's
// GET /api/sessions payload.
func (g *Gateway) Sessions() []SessionInfo {
	g.mu.Lock()
	workers := make([]*gwSession, 0, len(g.sessions))
	for _, s := range g.sessions {
		workers = append(workers, s)
	}
	g.mu.Unlock()
	out := make([]SessionInfo, 0, len(workers))
	for _, s := range workers {
		out = append(out, SessionInfo{
			ID:         s.id,
			State:      State(s.statState.Load()).String(),
			Bytes:      s.statCum.Load(),
			Total:      s.statTotal.Load(),
			Resumes:    int(s.statResumes.Load()),
			AgeSeconds: g.clk.Since(s.created).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// datagram is one inbound UDP payload queued between ingress and demux.
type datagram struct {
	data []byte
	addr *net.UDPAddr
}

// inEnv is one decoded message delivered to a session worker.
type inEnv struct {
	msg  *Msg
	addr *net.UDPAddr
}

// maxTombstones bounds the remembered-endings ring: tombstones let late
// datagrams for a discarded session get the honest answer — FIN-ACK again
// for a completed transfer, RESET for an evicted one.
const maxTombstones = 4096

// Gateway is the long-running link service: one UDP socket serving many
// concurrent reliable sessions, each an isolated worker goroutine around a
// session Machine, with ingress and demultiplexing running as supervised
// flowgraph blocks. Construct with NewGateway, drive with Run.
type Gateway struct {
	cfg  Config
	clk  clock.Clock
	log  *slog.Logger
	rec  *flight.Recorder
	hub  *stream.Hub
	conn *net.UDPConn

	inbox chan datagram

	mu        sync.Mutex
	sessions  map[uint64]*gwSession
	tombs     map[uint64]bool // id → completed
	tombOrder []uint64
	closed    bool
	runCtx    context.Context

	wg sync.WaitGroup

	// Accounting: atomics for the hot paths, a mutex-guarded reason map
	// for the failure taxonomy.
	active, opened, completed, failed  atomic.Int64
	reconnects, resetsSent             atomic.Int64
	droppedDgrams, corruptDgrams       atomic.Int64
	windowDrops                        atomic.Int64
	bytesStored                        atomic.Int64
	reasonMu                           sync.Mutex
	failReasons                        map[string]int64
	cOpened, cCompleted, cFailed       *obs.Counter
	cReconnects, cResets               *obs.Counter
	cDropped, cCorrupt                 *obs.Counter
	gActive                            *obs.Gauge
	hSessionSeconds, hSessionKilobytes *obs.Histogram
}

// NewGateway binds the listen socket. Run must be called to serve.
func NewGateway(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	ua, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("session: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("session: listen %q: %w", cfg.Listen, err)
	}
	g := &Gateway{
		cfg:         cfg,
		clk:         cfg.Clock,
		log:         cfg.Logger,
		rec:         cfg.Recorder,
		hub:         cfg.Events,
		conn:        conn,
		inbox:       make(chan datagram, 4*cfg.MailboxDepth),
		sessions:    make(map[uint64]*gwSession),
		tombs:       make(map[uint64]bool),
		failReasons: make(map[string]int64),
	}
	if reg := cfg.Registry; reg != nil {
		g.cOpened = reg.Counter("mimonet_gw_sessions_opened_total", "sessions accepted (HELLO or fresh RESUME)")
		g.cCompleted = reg.Counter("mimonet_gw_sessions_completed_total", "sessions that verified their transfer and drained")
		g.cFailed = reg.Counter("mimonet_gw_sessions_failed_total", "sessions that failed closed (timeout, reset, shutdown)")
		g.cReconnects = reg.Counter("mimonet_gw_reconnects_total", "RESUME re-attaches to live sessions")
		g.cResets = reg.Counter("mimonet_gw_resets_sent_total", "RESET datagrams sent (unknown session, capacity, eviction)")
		g.cDropped = reg.Counter("mimonet_gw_dgrams_dropped_total", "inbound datagrams dropped (queue overflow)")
		g.cCorrupt = reg.Counter("mimonet_gw_dgrams_corrupt_total", "inbound datagrams rejected (framing or FCS)")
		g.gActive = reg.Gauge("mimonet_gw_sessions_active", "currently live sessions")
		g.hSessionSeconds = reg.Histogram("mimonet_gw_session_seconds", "session lifetime from accept to close",
			[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 30, 120})
		g.hSessionKilobytes = reg.Histogram("mimonet_gw_session_kilobytes", "payload bytes stored per session, in KiB",
			[]float64{1, 4, 16, 64, 256, 1024})
	}
	return g, nil
}

// Addr returns the bound UDP address (useful with port 0).
func (g *Gateway) Addr() net.Addr { return g.conn.LocalAddr() }

// Stats snapshots the gateway's session accounting.
func (g *Gateway) Stats() Stats {
	s := Stats{
		Active:      g.active.Load(),
		Opened:      g.opened.Load(),
		Completed:   g.completed.Load(),
		Failed:      g.failed.Load(),
		Reconnects:  g.reconnects.Load(),
		ResetsSent:  g.resetsSent.Load(),
		Dropped:     g.droppedDgrams.Load(),
		Corrupt:     g.corruptDgrams.Load(),
		WindowDrops: g.windowDrops.Load(),
		BytesStored: g.bytesStored.Load(),
	}
	g.reasonMu.Lock()
	if len(g.failReasons) > 0 {
		s.FailReasons = make(map[string]int64, len(g.failReasons))
		for k, v := range g.failReasons {
			s.FailReasons[k] = v
		}
	}
	g.reasonMu.Unlock()
	return s
}

// Run serves until ctx is cancelled, then shuts down: the socket closes,
// every live session fails closed with reason "shutdown", and Run returns
// only after all session workers and graph pumps have exited — the no-leak
// guarantee the soak harness asserts.
func (g *Gateway) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	g.mu.Lock()
	g.runCtx = runCtx
	g.mu.Unlock()
	// Closing the socket is what unblocks a ReadFromUDP parked in ingress.
	stopped := make(chan struct{})
	go func() {
		<-runCtx.Done()
		g.mu.Lock()
		g.closed = true
		g.mu.Unlock()
		g.conn.Close()
		close(stopped)
	}()

	graph := flowgraph.New()
	ing := &ingressBlock{g: g}
	dmx := &demuxBlock{g: g}
	if err := graph.Add(ing); err != nil {
		return err
	}
	if err := graph.Add(dmx); err != nil {
		return err
	}
	if err := graph.Connect(ing, 0, dmx, 0); err != nil {
		return err
	}
	// Supervised pumps: panics contained, restart with backoff. No
	// StallTimeout — an idle gateway (no inbound traffic, downstream
	// capacity free) is indistinguishable from the watchdog's source-stall
	// predicate and must not be declared dead.
	if err := graph.SetPolicy(flowgraph.Policy{
		MaxRestarts: 4,
		TrackHealth: true,
		Metrics:     g.cfg.Registry,
		Logger:      g.log,
		Clock:       g.clk,
		OnRestart: func(block string, attempt int, err error) {
			reason := ""
			if err != nil {
				reason = err.Error()
			}
			g.hub.Publish(stream.Event{
				Type:  stream.EventSupervisorRestart,
				Block: block, Attempt: attempt, Reason: reason,
			})
		},
	}); err != nil {
		return err
	}
	err := graph.Run(runCtx)
	cancel()
	<-stopped
	g.wg.Wait()
	if ctx.Err() != nil {
		// Cancellation is the normal way to stop a gateway.
		return nil
	}
	return err
}

// send encodes one session message into a radio data frame and transmits it
// to addr, through the fault-injection intercept when configured.
func (g *Gateway) send(id uint64, seq uint64, m *Msg, addr *net.UDPAddr) {
	payload, err := AppendMessage(nil, m)
	if err != nil {
		return
	}
	frame, err := radio.EncodeDataFrame(nil, radio.Header{Seq: seq, SessionID: id}, payload)
	if err != nil {
		return
	}
	if g.cfg.Intercept != nil {
		for _, d := range g.cfg.Intercept(frame) {
			g.conn.WriteToUDP(d, addr) //nolint:errcheck // lossy link: errors equal loss
		}
		return
	}
	g.conn.WriteToUDP(frame, addr) //nolint:errcheck // lossy link: errors equal loss
}

// reset answers a datagram that cannot be routed.
func (g *Gateway) reset(id uint64, reason string, addr *net.UDPAddr) {
	g.resetsSent.Add(1)
	g.cResets.Inc()
	g.send(id, 0, &Msg{Kind: KindReset, Reason: reason}, addr)
}

// route delivers one decoded inbound datagram: to its live session's
// mailbox, to a fresh session for an acceptable HELLO/RESUME, or answered
// directly from a tombstone.
func (g *Gateway) route(d datagram) {
	h, err := radio.DecodeHeader(d.data)
	if err != nil || !h.IsData() {
		g.corruptDgrams.Add(1)
		g.cCorrupt.Inc()
		return
	}
	body, err := radio.DecodeDataPayload(h, d.data[h.HeaderLen():])
	if err != nil {
		g.corruptDgrams.Add(1)
		g.cCorrupt.Inc()
		return
	}
	m, err := DecodeMessage(body)
	if err != nil {
		g.corruptDgrams.Add(1)
		g.cCorrupt.Inc()
		return
	}
	m.Session = h.SessionID

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	if s := g.sessions[m.Session]; s != nil {
		g.mu.Unlock()
		select {
		case s.mbox <- inEnv{msg: m, addr: d.addr}:
		default:
			// A full mailbox means the worker is saturated; dropping here
			// is the same loss the UDP link already imposes, and the
			// client's ARQ retransmits.
			g.droppedDgrams.Add(1)
			g.cDropped.Inc()
		}
		return
	}
	// No live session. Tombstones answer late traffic honestly.
	if done, ok := g.tombs[m.Session]; ok {
		g.mu.Unlock()
		if done && (m.Kind == KindFin || m.Kind == KindResume) {
			// The transfer completed; the peer just never saw the ack.
			g.send(m.Session, 0, &Msg{Kind: KindFinAck}, d.addr)
			return
		}
		g.reset(m.Session, "evicted", d.addr)
		return
	}
	switch m.Kind {
	case KindHello, KindResume:
		if len(g.sessions) >= g.cfg.MaxSessions {
			g.mu.Unlock()
			g.reset(m.Session, "busy", d.addr)
			return
		}
		s := g.newSessionLocked(m.Session)
		g.mu.Unlock()
		s.mbox <- inEnv{msg: m, addr: d.addr}
	case KindReset:
		// A reset for a session we do not hold needs no answer.
		g.mu.Unlock()
	default:
		g.mu.Unlock()
		g.reset(m.Session, "unknown-session", d.addr)
	}
}

// newSessionLocked registers a worker for id and starts its goroutine.
// Caller holds g.mu.
func (g *Gateway) newSessionLocked(id uint64) *gwSession {
	s := &gwSession{
		g:       g,
		id:      id,
		mbox:    make(chan inEnv, g.cfg.MailboxDepth),
		created: g.clk.Now(),
	}
	g.sessions[id] = s
	g.opened.Add(1)
	g.cOpened.Inc()
	g.active.Add(1)
	g.gActive.Set(float64(g.active.Load()))
	g.wg.Add(1)
	go s.run()
	return s
}

// finish tears a session's registration down and records its ending.
func (g *Gateway) finish(s *gwSession) {
	g.mu.Lock()
	delete(g.sessions, s.id)
	if !g.closed {
		// No tombstones during shutdown: everything is going away anyway.
		if len(g.tombOrder) >= maxTombstones {
			old := g.tombOrder[0]
			g.tombOrder = g.tombOrder[1:]
			delete(g.tombs, old)
		}
		g.tombs[s.id] = s.mach.Outcome() == OutcomeCompleted
		g.tombOrder = append(g.tombOrder, s.id)
	}
	g.mu.Unlock()
	g.active.Add(-1)
	g.gActive.Set(float64(g.active.Load()))
	life := g.clk.Since(s.created)
	if g.hSessionSeconds != nil {
		g.hSessionSeconds.Observe(life.Seconds())
		g.hSessionKilobytes.Observe(float64(s.cum) / 1024)
	}
	g.bytesStored.Add(int64(s.cum))
	if s.mach.Outcome() == OutcomeCompleted {
		g.completed.Add(1)
		g.cCompleted.Inc()
		g.hub.Publish(stream.Event{Type: stream.EventSessionCompleted,
			Session: s.id, Bytes: int64(s.cum)})
		if g.log != nil {
			g.log.Info("session completed", "session", s.id,
				"bytes", s.cum, "lifetime", life, "reconnects", s.resumes)
		}
		return
	}
	reason := s.mach.Reason()
	g.failed.Add(1)
	g.cFailed.Inc()
	g.reasonMu.Lock()
	g.failReasons[reason]++
	g.reasonMu.Unlock()
	g.hub.Publish(stream.Event{Type: stream.EventSessionFailed,
		Session: s.id, Bytes: int64(s.cum), Reason: reason})
	if g.log != nil {
		g.log.Warn("session failed", "session", s.id, "reason", reason,
			"state_bytes", s.cum, "of", s.total, "lifetime", life)
	}
	// The flight recorder treats any verdict outside the ok-set as a
	// failure, so this Record trips its OnFailure dump trigger.
	if g.rec.Enabled() {
		file, dumpReason, err := g.rec.Record(flight.Evidence{
			PacketID: s.id,
			Verdict:  "session-" + reason,
			Note:     fmt.Sprintf("bytes %d of %d, state %v", s.cum, s.total, s.mach.State()),
		})
		if err == nil && file != "" {
			g.hub.Publish(stream.Event{Type: stream.EventFlightDump,
				Session: s.id, Reason: dumpReason, File: file})
		}
	}
}

// ingressBlock reads UDP datagrams onto the gateway inbox and emits one
// token chunk per datagram so the supervised edge carries the flow (and its
// health counters measure it). Payload bytes stay off the sample channel —
// chunks are []complex128 — hence the side queue.
type ingressBlock struct {
	g *Gateway
}

func (b *ingressBlock) Name() string      { return "gw-ingress" }
func (b *ingressBlock) Inputs() int       { return 0 }
func (b *ingressBlock) Outputs() int      { return 1 }
func (b *ingressBlock) Restartable() bool { return true }

func (b *ingressBlock) Run(ctx context.Context, _ []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	g := b.g
	buf := make([]byte, 64*1024)
	for {
		if ctx.Err() != nil {
			return nil
		}
		n, addr, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("gw-ingress: %w", err)
		}
		d := datagram{data: append([]byte(nil), buf[:n]...), addr: addr} //mimonet:alloc-ok datagram escapes to the demux
		select {
		case g.inbox <- d:
		default:
			// Inbox full: shed inbound load instead of stalling the read
			// loop — UDP loss semantics, and the client ARQ retransmits.
			g.droppedDgrams.Add(1)
			g.cDropped.Inc()
			continue
		}
		if !flowgraph.Send(ctx, out[0], nil) {
			return nil
		}
	}
}

// demuxBlock drains the inbox in step with the token stream and routes each
// datagram to its session worker.
type demuxBlock struct {
	g *Gateway
}

func (b *demuxBlock) Name() string      { return "gw-demux" }
func (b *demuxBlock) Inputs() int       { return 1 }
func (b *demuxBlock) Outputs() int      { return 0 }
func (b *demuxBlock) Restartable() bool { return true }

func (b *demuxBlock) Run(ctx context.Context, in []<-chan flowgraph.Chunk, _ []chan<- flowgraph.Chunk) error {
	for {
		if _, ok := flowgraph.Recv(ctx, in[0]); !ok {
			return nil
		}
		select {
		case d := <-b.g.inbox:
			b.g.route(d)
		default:
			// Token without a datagram: a prior demux incarnation consumed
			// it before restarting. Nothing to do.
		}
	}
}

// gwSession is one live session worker: owner of the reassembly state, the
// peer address, and the state machine; fed exclusively through its mailbox.
type gwSession struct {
	g    *Gateway
	id   uint64
	mbox chan inEnv

	mach    Machine
	addr    *net.UDPAddr
	created time.Time

	total     uint64
	chunkSize uint64
	credit    int
	sink      io.Writer

	cum      uint64
	buffered map[uint64][]byte // chunk index → payload, within the window

	txSeq   uint64
	resumes int

	// gBytes is the per-session progress gauge, labelled by the bounded
	// 64-value lane (id mod 64) — the slot-label discipline the AP table
	// uses, so a churning session population cannot fork unbounded metric
	// families. Registered at open, nil-safe before.
	gBytes *obs.Gauge

	// Mirrors of worker-owned state for the control API (see SessionInfo).
	statState   atomic.Int32
	statCum     atomic.Uint64
	statTotal   atomic.Uint64
	statResumes atomic.Int32
}

// syncInfo mirrors worker-owned state into the atomics Sessions reads.
func (s *gwSession) syncInfo() {
	s.statState.Store(int32(s.mach.State()))
	s.statCum.Store(s.cum)
	s.statTotal.Store(s.total)
	s.statResumes.Store(int32(s.resumes))
	s.gBytes.Set(float64(s.cum))
}

// run is the worker loop: one mailbox message or one deadline at a time,
// every iteration re-arming the state's timer (so any inbound datagram
// resets the idle deadline). A panic anywhere in message handling fails
// exactly this session closed; neighbors never notice.
func (s *gwSession) run() {
	defer s.g.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.mach.Step(EvReset, "panic")
			if s.g.log != nil {
				s.g.log.Error("session worker panicked", "session", s.id, "panic", fmt.Sprint(r))
			}
		}
		s.g.finish(s)
	}()
	ctx := s.g.runContext()
	for s.mach.State() != StateClosed {
		t := s.g.clk.NewTimer(s.deadline())
		select {
		case env := <-s.mbox:
			t.Stop()
			s.handle(env)
		case <-t.C:
			if s.mach.State() == StateDraining {
				s.mach.Step(EvDrained, "")
			} else {
				s.mach.Step(EvTimeout, s.timeoutReason())
			}
		case <-ctx.Done():
			t.Stop()
			s.mach.Step(EvShutdown, "shutdown")
		}
		s.syncInfo()
	}
}

// runContext returns the gateway's run-scoped context for worker shutdown.
// Workers only exist while Run is active, so the field is always set.
func (g *Gateway) runContext() context.Context {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.runCtx == nil {
		return context.Background()
	}
	return g.runCtx
}

func (s *gwSession) deadline() time.Duration {
	switch s.mach.State() {
	case StateHandshake:
		return s.g.cfg.HandshakeTimeout
	case StateDraining:
		return s.g.cfg.DrainLinger
	default:
		return s.g.cfg.IdleTimeout
	}
}

func (s *gwSession) timeoutReason() string {
	if s.mach.State() == StateHandshake {
		return "handshake-timeout"
	}
	return "idle-timeout"
}

func (s *gwSession) send(m *Msg) {
	s.txSeq++
	s.g.send(s.id, s.txSeq, m, s.addr)
}

func (s *gwSession) handle(env inEnv) {
	m := env.msg
	s.addr = env.addr
	switch m.Kind {
	case KindHello:
		s.open(m, KindHelloAck)
	case KindResume:
		if s.mach.State() != StateHandshake {
			// A live session re-attached from a new address: reconnect.
			s.resumes++
			s.g.reconnects.Add(1)
			s.g.cReconnects.Inc()
			s.g.hub.Publish(stream.Event{Type: stream.EventSessionResumed,
				Session: s.id, Bytes: int64(s.cum)})
			if s.g.log != nil {
				s.g.log.Info("session resumed", "session", s.id, "cum", s.cum, "peer", env.addr.String())
			}
		}
		s.open(m, KindResumeAck)
	case KindData:
		if s.mach.State() != StateTransfer {
			return
		}
		s.data(m)
	case KindFin:
		s.fin(m)
	case KindReset:
		s.mach.Step(EvReset, "peer-reset")
	default:
		// Ack-class kinds (HELLO-ACK, ACK, RESUME-ACK, FIN-ACK) are
		// client-bound; a gateway receiving one drops it silently.
	}
}

// open accepts a HELLO or (re-)RESUME: negotiate the chunk size once, then
// grant credit and — for resumes — report the contiguous high-water mark so
// the client rewinds exactly that far.
func (s *gwSession) open(m *Msg, ackKind Kind) {
	if s.chunkSize == 0 {
		cs := uint64(m.ChunkSize)
		if cs == 0 {
			cs = DefaultChunkBytes
		}
		if cs > MaxChunkBytes {
			cs = MaxChunkBytes
		}
		s.chunkSize = cs
		s.total = m.Total
		s.credit = s.g.cfg.CreditWindow
		s.buffered = make(map[uint64][]byte, s.credit)
		if s.g.cfg.NewSink != nil {
			s.sink = s.g.cfg.NewSink(s.id)
		}
		if reg := s.g.cfg.Registry; reg != nil {
			s.gBytes = reg.Gauge("mimonet_gw_session_cum_bytes",
				"per-session reassembled bytes, labelled by the bounded session lane (id mod 64)",
				obs.Label{Key: "lane", Value: fmt.Sprintf("%02d", s.id%64)})
		}
		s.g.hub.Publish(stream.Event{Type: stream.EventSessionOpened,
			Session: s.id, Bytes: int64(s.total)})
		if s.g.log != nil {
			s.g.log.Info("session opened", "session", s.id, "total", s.total,
				"chunk", s.chunkSize, "kind", m.Kind.String())
		}
	}
	s.send(&Msg{Kind: ackKind, ChunkSize: uint32(s.chunkSize), Credit: uint16(s.credit), CumOffset: s.cum})
	s.mach.Step(EvAttach, "")
	if s.total == 0 {
		// Zero-length transfer: nothing to move; wait for the FIN.
		s.mach.Step(EvProgress, "")
	}
}

// data ingests one chunk: FCS-verified, deduplicated, windowed, then the
// contiguous prefix advances into the sink and one ACK reports the new
// cumulative offset, the reassembly bitmap, and the refreshed credit.
func (s *gwSession) data(m *Msg) {
	_, offset, payload, err := DecodeChunk(m.MPDU)
	if err != nil {
		// Mangled in flight; the ARQ will re-send it. Don't ack.
		s.g.corruptDgrams.Add(1)
		s.g.cCorrupt.Inc()
		return
	}
	end := offset + uint64(len(payload))
	switch {
	case end <= s.cum:
		// Duplicate of consumed data: re-ack so the sender releases it.
	case offset%s.chunkSize != 0 || end > s.total:
		// Misaligned or out-of-range: drop without acking.
		return
	default:
		idx := offset / s.chunkSize
		base := s.cum / s.chunkSize
		if idx >= base+uint64(s.credit) {
			// Beyond the granted window; the sender is ahead of its
			// credit. Drop it — acks for in-window traffic restate the
			// grant and the ARQ re-sends the chunk once it fits.
			s.g.windowDrops.Add(1)
			return
		}
		if _, dup := s.buffered[idx]; !dup {
			s.buffered[idx] = append([]byte(nil), payload...)
		}
		// Advance the contiguous prefix into the sink.
		for {
			b, ok := s.buffered[s.cum/s.chunkSize]
			if !ok {
				break
			}
			delete(s.buffered, s.cum/s.chunkSize)
			if s.sink != nil {
				if _, err := s.sink.Write(b); err != nil {
					s.mach.Step(EvReset, "sink-error")
					s.send(&Msg{Kind: KindReset, Reason: "sink-error"})
					return
				}
			}
			s.cum += uint64(len(b))
		}
	}
	s.mach.Step(EvProgress, "")
	s.ack()
}

// ack reports reassembly state: the cumulative offset releases everything
// below it; the bitmap (anchored at the chunk index just past cum, its
// low 12 bits in BlockAck.Start) releases out-of-order arrivals; the credit
// restates how many chunks past cum the sender may keep in flight.
func (s *gwSession) ack() {
	base := s.cum / s.chunkSize
	var bitmap uint64
	for idx := range s.buffered {
		if off := idx - base; off < 64 {
			bitmap |= 1 << off
		}
	}
	s.send(&Msg{
		Kind:      KindAck,
		Ack:       mac.BlockAck{Start: uint16(base & 0x0FFF), Bitmap: bitmap},
		CumOffset: s.cum,
		Credit:    uint16(s.credit),
	})
}

// fin verifies the transfer end: complete and contiguous → FIN-ACK and
// drain; short → restate the reassembly ack so the sender finishes the job.
func (s *gwSession) fin(m *Msg) {
	if s.mach.State() == StateDraining {
		s.send(&Msg{Kind: KindFinAck})
		return
	}
	if s.chunkSize == 0 {
		// FIN before HELLO: nothing was ever negotiated.
		s.send(&Msg{Kind: KindReset, Reason: "fin-before-hello"})
		s.mach.Step(EvReset, "fin-before-hello")
		return
	}
	if s.cum == m.Total && s.cum == s.total && len(s.buffered) == 0 {
		s.send(&Msg{Kind: KindFinAck})
		s.mach.Step(EvFinish, "")
		return
	}
	s.ack()
}
