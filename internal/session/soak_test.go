package session

import (
	"context"
	"testing"
	"time"
)

// TestSoakSmall runs the chaos soak at CI scale: every scenario in the
// rotation, every session must end in a defined terminal state, payloads
// must verify, and the process must return to its goroutine baseline.
func TestSoakSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := RunSoak(ctx, SoakConfig{
		Sessions: 36,
		Bytes:    8 * 1024,
		Parallel: 12,
		Seed:     20260808,
	})
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	if res.FailedDirty != 0 {
		t.Errorf("dirty failures: %d (want 0)", res.FailedDirty)
	}
	if res.Mismatches != 0 {
		t.Errorf("payload mismatches: %d (want 0)", res.Mismatches)
	}
	if got := res.Completed + res.FailedClean; got != res.Sessions {
		t.Errorf("unaccounted sessions: %d of %d ended in a defined state", got, res.Sessions)
	}
	if res.GoroutinesAfter > res.GoroutinesBefore {
		t.Errorf("goroutine leak: %d before, %d after", res.GoroutinesBefore, res.GoroutinesAfter)
	}
	// The control group must be perfect: no faults, no excuses.
	if clean := res.PerScenario["clean"]; clean.Completed != clean.Sessions {
		t.Errorf("clean scenario: %d/%d completed", clean.Completed, clean.Sessions)
	}
	// The fault scenarios must have actually exercised the recovery paths.
	if res.PerScenario["peer-kill"].Reconnects == 0 {
		t.Errorf("peer-kill scenario produced no reconnects")
	}
	if !res.Clean() {
		t.Errorf("soak not clean: %+v", res)
	}
	t.Logf("soak: %d completed, %d failed clean, %d reconnects, p99 recovery %.1fms",
		res.Completed, res.FailedClean, res.Reconnects, res.RecoveryP99Ms)
}
