package session

import (
	"bytes"
	"testing"

	"repro/internal/mac"
)

func TestMessageRoundTrip(t *testing.T) {
	mpdu, err := EncodeChunk(7, 4096, []byte("payload bytes"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []Msg{
		{Kind: KindHello, Total: 1 << 20, ChunkSize: 1024},
		{Kind: KindHelloAck, ChunkSize: 1024, Credit: 32},
		{Kind: KindData, MPDU: mpdu},
		{Kind: KindAck, Ack: mac.BlockAck{Start: 17, Bitmap: 0xDEADBEEF}, CumOffset: 99 * 1024, Credit: 12},
		{Kind: KindResume, Total: 1 << 20, ChunkSize: 1024},
		{Kind: KindResumeAck, ChunkSize: 1024, Credit: 32, CumOffset: 512 * 1024},
		{Kind: KindFin, Total: 1 << 20},
		{Kind: KindFinAck},
		{Kind: KindReset, Reason: "busy"},
	}
	for _, want := range cases {
		t.Run(want.Kind.String(), func(t *testing.T) {
			wire, err := AppendMessage(nil, &want)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeMessage(wire)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != want.Kind || got.Total != want.Total ||
				got.ChunkSize != want.ChunkSize || got.Credit != want.Credit ||
				got.Ack != want.Ack || got.CumOffset != want.CumOffset ||
				got.Reason != want.Reason || !bytes.Equal(got.MPDU, want.MPDU) {
				t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
			}
		})
	}
}

func TestMessageRejectsCorruption(t *testing.T) {
	wire, err := AppendMessage(nil, &Msg{Kind: KindAck, CumOffset: 12345, Credit: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip must fail the FCS, so a mangled datagram can
	// never forge an acknowledgement.
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x40
		if _, err := DecodeMessage(bad); err == nil {
			t.Fatalf("corrupt byte %d accepted", i)
		}
	}
	// Truncations at every length must fail cleanly too.
	for n := range wire {
		if _, err := DecodeMessage(wire[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := DecodeMessage(nil); err == nil {
		t.Fatal("empty message accepted")
	}
}

func TestChunkRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte{0x5A}, 1024)
	mpdu, err := EncodeChunk(0x0FFF, 7*1024, data)
	if err != nil {
		t.Fatal(err)
	}
	seq, off, got, err := DecodeChunk(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0x0FFF || off != 7*1024 || !bytes.Equal(got, data) {
		t.Fatalf("chunk round trip: seq %d off %d len %d", seq, off, len(got))
	}
	if _, err := EncodeChunk(0, 0, nil); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if _, err := EncodeChunk(0, 0, make([]byte, MaxChunkBytes+1)); err == nil {
		t.Fatal("oversized chunk accepted")
	}
	if _, _, _, err := DecodeChunk(mpdu[:len(mpdu)-1]); err == nil {
		t.Fatal("truncated MPDU accepted")
	}
}

func TestUnknownKindRejected(t *testing.T) {
	if _, err := AppendMessage(nil, &Msg{Kind: Kind(200)}); err == nil {
		t.Fatal("unknown kind encoded")
	}
}
