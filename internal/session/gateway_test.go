package session

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/radio"
)

// leakCheck snapshots the goroutine count and returns an assertion that it
// came back to (near) baseline, retrying while stragglers unwind.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for {
			after := runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// capSink is a concurrency-safe byte sink keyed by session.
type capSink struct {
	mu   sync.Mutex
	bufs map[uint64]*bytes.Buffer
}

func newCapSink() *capSink { return &capSink{bufs: make(map[uint64]*bytes.Buffer)} }

func (cs *capSink) New(id uint64) io.Writer {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	b := &bytes.Buffer{}
	cs.bufs[id] = b
	return syncWriter{mu: &cs.mu, w: b}
}

func (cs *capSink) Bytes(id uint64) []byte {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if b := cs.bufs[id]; b != nil {
		return append([]byte(nil), b.Bytes()...)
	}
	return nil
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// startGateway runs a gateway until the test ends (or stop is called).
func startGateway(t *testing.T, cfg Config) (*Gateway, func()) {
	t.Helper()
	gw, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- gw.Run(ctx) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("gateway run: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return gw, stop
}

// waitStats polls until the condition holds — completion accounting lands
// only after the drain linger expires, so snapshots right after a Send
// still see the session draining.
func waitStats(t *testing.T, gw *Gateway, ok func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := gw.Stats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition never met: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestGatewayTransferEndToEnd(t *testing.T) {
	assertNoLeak := leakCheck(t)
	sink := newCapSink()
	gw, stop := startGateway(t, Config{Listen: "127.0.0.1:0", NewSink: sink.New})

	data := testPayload(200*1024+37, 1)
	c, err := NewClient(ClientConfig{Addr: gw.Addr().String(), SessionID: 77,
		Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	if got := sink.Bytes(77); !bytes.Equal(got, data) {
		t.Fatalf("sink holds %d bytes, want %d (content mismatch: %v)",
			len(got), len(data), !bytes.Equal(got, data))
	}
	waitStats(t, gw, func(st Stats) bool { return st.Completed == 1 && st.Failed == 0 })
	stop()
	assertNoLeak()
}

func TestGatewayZeroLengthTransfer(t *testing.T) {
	gw, _ := startGateway(t, Config{Listen: "127.0.0.1:0"})
	c, err := NewClient(ClientConfig{Addr: gw.Addr().String(),
		Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	waitStats(t, gw, func(st Stats) bool { return st.Completed == 1 })
}

func TestGatewayManyConcurrentSessions(t *testing.T) {
	assertNoLeak := leakCheck(t)
	sink := newCapSink()
	gw, stop := startGateway(t, Config{Listen: "127.0.0.1:0", NewSink: sink.New})

	const n = 24
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			id := uint64(1000 + i)
			data := testPayload(8*1024+i, int64(100+i))
			c, err := NewClient(ClientConfig{Addr: gw.Addr().String(), SessionID: id,
				Rand: rand.New(rand.NewSource(int64(200 + i)))})
			if err != nil {
				errs <- err
				return
			}
			if err := c.Send(context.Background(), data); err != nil {
				errs <- fmt.Errorf("session %d: %w", id, err)
				return
			}
			if !bytes.Equal(sink.Bytes(id), data) {
				errs <- fmt.Errorf("session %d: sink mismatch", id)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	waitStats(t, gw, func(st Stats) bool { return st.Completed == n && st.Failed == 0 })
	stop()
	assertNoLeak()
}

// TestClientReconnectResume kills the client's socket mid-transfer; the
// client must reconnect, RESUME, rewind to the gateway's contiguous offset,
// and still deliver a byte-identical stream.
func TestClientReconnectResume(t *testing.T) {
	assertNoLeak := leakCheck(t)
	sink := newCapSink()
	gw, stop := startGateway(t, Config{Listen: "127.0.0.1:0", NewSink: sink.New})

	data := testPayload(300*1024, 4)
	c, err := NewClient(ClientConfig{Addr: gw.Addr().String(), SessionID: 88,
		Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the socket once the transfer demonstrably started.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if len(sink.Bytes(88)) > 0 {
				c.Kill()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	if err := c.Send(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	<-killed
	if got := sink.Bytes(88); !bytes.Equal(got, data) {
		t.Fatalf("sink holds %d bytes, want %d", len(got), len(data))
	}
	if c.Reconnects < 1 {
		t.Fatalf("client never reconnected (kill raced completion?) reconnects=%d", c.Reconnects)
	}
	if len(c.Recoveries) != c.Reconnects {
		t.Fatalf("recovery samples %d != reconnects %d", len(c.Recoveries), c.Reconnects)
	}
	waitStats(t, gw, func(st Stats) bool { return st.Completed == 1 && st.Reconnects >= 1 })
	stop()
	assertNoLeak()
}

// TestGatewayRestartResume restarts the whole gateway process mid-stream.
// The replacement holds no session state, so RESUME re-creates the session
// from offset zero and the client rewinds and completes the transfer.
func TestGatewayRestartResume(t *testing.T) {
	sink1 := newCapSink()
	gw1, err := NewGateway(Config{Listen: "127.0.0.1:0", NewSink: sink1.New})
	if err != nil {
		t.Fatal(err)
	}
	addr := gw1.Addr().String()
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() { done1 <- gw1.Run(ctx1) }()

	data := testPayload(400*1024, 6)
	c, err := NewClient(ClientConfig{Addr: addr, SessionID: 99,
		MaxReconnects: 10, Rand: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}

	sink2 := newCapSink()
	restarted := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && len(sink1.Bytes(99)) == 0 {
			time.Sleep(time.Millisecond)
		}
		// Tear the first gateway down completely, then bind a fresh one on
		// the same address — a peer restart with total state loss.
		cancel1()
		if err := <-done1; err != nil {
			restarted <- err
			return
		}
		gw2, err := NewGateway(Config{Listen: addr, NewSink: sink2.New})
		if err != nil {
			restarted <- err
			return
		}
		ctx2, cancel2 := context.WithCancel(context.Background())
		done2 := make(chan error, 1)
		go func() { done2 <- gw2.Run(ctx2) }()
		t.Cleanup(func() {
			cancel2()
			<-done2
		})
		restarted <- nil
	}()

	if err := c.Send(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	if err := <-restarted; err != nil {
		t.Fatal(err)
	}
	if got := sink2.Bytes(99); !bytes.Equal(got, data) {
		t.Fatalf("replacement gateway holds %d bytes, want %d", len(got), len(data))
	}
	if c.Reconnects < 1 {
		t.Fatal("client never reconnected across the gateway restart")
	}
}

// rawSend speaks the wire protocol directly — a half-open peer for driving
// the gateway into states a well-behaved Client never produces.
func rawSend(t *testing.T, addr string, id uint64, m *Msg) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{Addr: addr, SessionID: id,
		Rand: rand.New(rand.NewSource(int64(id)))})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.dial(); err != nil {
		t.Fatal(err)
	}
	if err := c.sendMsg(m); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGatewayIdleEvictionAndTombstone(t *testing.T) {
	assertNoLeak := leakCheck(t)
	gw, stop := startGateway(t, Config{
		Listen:      "127.0.0.1:0",
		IdleTimeout: 40 * time.Millisecond,
	})

	// Handshake, then go silent: the gateway must evict without help.
	c := rawSend(t, gw.Addr().String(), 555, &Msg{Kind: KindHello, Total: 4096, ChunkSize: 1024})
	defer c.closeConn()
	if m, err := c.readMsg(time.Now().Add(time.Second)); err != nil || m.Kind != KindHelloAck {
		t.Fatalf("handshake: %v %v", m, err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for gw.Stats().Failed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session never evicted: %+v", gw.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := gw.Stats()
	if st.FailReasons["idle-timeout"] != 1 {
		t.Fatalf("failure taxonomy: %+v", st.FailReasons)
	}
	if st.Active != 0 {
		t.Fatalf("evicted session still active: %+v", st)
	}

	// A late RESUME for the evicted session gets an honest RESET.
	if err := c.sendMsg(&Msg{Kind: KindResume, Total: 4096, ChunkSize: 1024}); err != nil {
		t.Fatal(err)
	}
	m, err := c.readMsg(time.Now().Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindReset || m.Reason != "evicted" {
		t.Fatalf("resume after eviction: %v %q", m.Kind, m.Reason)
	}
	stop()
	assertNoLeak()
}

func TestGatewayBusyReset(t *testing.T) {
	gw, _ := startGateway(t, Config{
		Listen:      "127.0.0.1:0",
		MaxSessions: 1,
		IdleTimeout: 5 * time.Second,
	})
	// Pin the single slot with a half-open session.
	c := rawSend(t, gw.Addr().String(), 1, &Msg{Kind: KindHello, Total: 1 << 20, ChunkSize: 1024})
	defer c.closeConn()
	if m, err := c.readMsg(time.Now().Add(time.Second)); err != nil || m.Kind != KindHelloAck {
		t.Fatalf("handshake: %v %v", m, err)
	}
	// The next session must fail closed with the capacity reason.
	c2, err := NewClient(ClientConfig{Addr: gw.Addr().String(), SessionID: 2,
		HandshakeRetries: 2, Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	err = c2.Send(context.Background(), []byte("hello"))
	se, ok := err.(*SessionError)
	if !ok || se.Reason != "busy" {
		t.Fatalf("want busy SessionError, got %v", err)
	}
}

// TestFlowControlRespectsCredit grants a tiny credit window and asserts the
// client never sends past it: the gateway counts zero out-of-window drops
// while the transfer still completes.
func TestFlowControlRespectsCredit(t *testing.T) {
	sink := newCapSink()
	gw, _ := startGateway(t, Config{
		Listen:       "127.0.0.1:0",
		CreditWindow: 2,
		NewSink:      sink.New,
	})
	data := testPayload(64*1024, 10)
	c, err := NewClient(ClientConfig{Addr: gw.Addr().String(), SessionID: 11,
		Rand: rand.New(rand.NewSource(11))})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Bytes(11), data) {
		t.Fatal("sink mismatch")
	}
	if st := gw.Stats(); st.WindowDrops != 0 {
		t.Fatalf("client overran its credit window %d times: %+v", st.WindowDrops, st)
	}
}

// TestGatewayShutdownFailsSessionsClosed cancels the gateway with sessions
// live: every worker must exit (no leaks) and the sessions must be
// accounted as failed with the shutdown reason.
func TestGatewayShutdownFailsSessionsClosed(t *testing.T) {
	assertNoLeak := leakCheck(t)
	gw, stop := startGateway(t, Config{Listen: "127.0.0.1:0"})
	c := rawSend(t, gw.Addr().String(), 777, &Msg{Kind: KindHello, Total: 1 << 20, ChunkSize: 1024})
	defer c.closeConn()
	if m, err := c.readMsg(time.Now().Add(time.Second)); err != nil || m.Kind != KindHelloAck {
		t.Fatalf("handshake: %v %v", m, err)
	}
	stop()
	st := gw.Stats()
	if st.Active != 0 || st.FailReasons["shutdown"] != 1 {
		t.Fatalf("shutdown accounting: %+v", st)
	}
	assertNoLeak()
}

// TestGatewayIgnoresGarbage floods the socket with junk: sample frames,
// truncated data frames, and raw noise must never disturb a live transfer.
func TestGatewayIgnoresGarbage(t *testing.T) {
	sink := newCapSink()
	gw, _ := startGateway(t, Config{Listen: "127.0.0.1:0", NewSink: sink.New})

	junkDone := make(chan struct{})
	go func() {
		defer close(junkDone)
		c, err := NewClient(ClientConfig{Addr: gw.Addr().String(), SessionID: 1234,
			Rand: rand.New(rand.NewSource(13))})
		if err != nil {
			return
		}
		if err := c.dial(); err != nil {
			return
		}
		defer c.closeConn()
		samples := [][]complex128{make([]complex128, 16)}
		frame, _ := radio.EncodeFrame(nil, radio.Header{Streams: 1, Count: 16}, samples)
		for i := 0; i < 200; i++ {
			conn := c.currentConn()
			conn.Write(frame)                        // sample frame at a session port
			conn.Write([]byte("not a frame at all")) // raw noise
			if len(frame) > 30 {
				conn.Write(frame[:30]) // truncated header
			}
		}
	}()

	data := testPayload(100*1024, 14)
	c, err := NewClient(ClientConfig{Addr: gw.Addr().String(), SessionID: 15,
		Rand: rand.New(rand.NewSource(15))})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	<-junkDone
	if !bytes.Equal(sink.Bytes(15), data) {
		t.Fatal("garbage flood corrupted the transfer")
	}
	waitStats(t, gw, func(st Stats) bool { return st.Completed == 1 && st.Failed == 0 })
}
