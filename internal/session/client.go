package session

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/mac"
	"repro/internal/radio"
)

// SessionError is the fail-closed terminal error of a client transfer,
// carrying the failure-taxonomy reason ("peer-reset", "reconnect-budget",
// "handshake-timeout", "shutdown", …).
type SessionError struct {
	ID     uint64
	Reason string
}

func (e *SessionError) Error() string {
	return fmt.Sprintf("session %d failed: %s", e.ID, e.Reason)
}

// ClientConfig tunes a Client. Addr is required; every zero field picks a
// default sized for a local chaos-soaked link.
type ClientConfig struct {
	// Addr is the gateway's UDP address.
	Addr string
	// SessionID identifies the transfer; zero draws a random non-zero ID
	// from Rand.
	SessionID uint64
	// ChunkSize is the requested chunk payload size. Default
	// DefaultChunkBytes, capped at MaxChunkBytes.
	ChunkSize int
	// Window bounds ARQ outstanding chunks (≤ 64); the effective limit
	// each round is min(Window, gateway credit). Default 32.
	Window int

	// Clock is the injectable time source. Rand seeds the jitter and the
	// session ID; nil falls back to a fixed-seed source (fine for a single
	// client, wrong for a fleet — the soak derives per-session seeds).
	Clock clock.Clock
	Rand  *rand.Rand
	// Logger receives reconnect and failure events. Nil is silent.
	Logger *slog.Logger

	// AckTimeout bounds one transfer round's wait for acknowledgements.
	// Default 30ms.
	AckTimeout time.Duration
	// HandshakeTimeout bounds one HELLO/RESUME/FIN exchange attempt;
	// HandshakeRetries bounds the attempts. Defaults 150ms and 8.
	HandshakeTimeout time.Duration
	HandshakeRetries int
	// MaxRetries is the per-chunk ARQ transmission budget before the frame
	// drops (which triggers reconnect-with-resume). Default 8.
	MaxRetries int
	// BackoffBase/BackoffMax/JitterFrac shape the ARQ retry backoff.
	// Defaults 2ms, 50ms, 0.3.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	JitterFrac  float64
	// DeadRounds triggers reconnect after this many consecutive rounds
	// with zero acknowledged progress. Default 6.
	DeadRounds int
	// ReconnectBase/ReconnectMax shape the capped exponential
	// backoff-plus-jitter between reconnect attempts; MaxReconnects is the
	// retry budget after which the transfer fails closed. Defaults 10ms,
	// 250ms, 6.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	MaxReconnects int

	// Intercept, when set, sees every outbound datagram — the
	// faults.Injector.MangleDatagram seam on the client's transmit side.
	Intercept func(datagram []byte) [][]byte
}

func (c ClientConfig) withDefaults() ClientConfig {
	c.Clock = clock.Or(c.Clock)
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1)) //mimonet:globalrand-ok seeded fallback, not the global source
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkBytes
	}
	if c.ChunkSize > MaxChunkBytes {
		c.ChunkSize = MaxChunkBytes
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Window > 64 {
		c.Window = 64
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 30 * time.Millisecond
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 150 * time.Millisecond
	}
	if c.HandshakeRetries <= 0 {
		c.HandshakeRetries = 8
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 50 * time.Millisecond
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.3
	}
	if c.DeadRounds <= 0 {
		c.DeadRounds = 6
	}
	if c.ReconnectBase <= 0 {
		c.ReconnectBase = 10 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 250 * time.Millisecond
	}
	if c.MaxReconnects <= 0 {
		c.MaxReconnects = 6
	}
	if c.SessionID == 0 {
		for c.SessionID == 0 {
			c.SessionID = c.Rand.Uint64()
		}
	}
	return c
}

// Client drives one reliable transfer to a Gateway: handshake, credit- and
// ARQ-windowed chunk rounds, reconnect-with-resume when the link dies under
// it, and a verified FIN. Send is single-threaded; Kill is the one method
// safe to call concurrently (the chaos harness's peer-kill lever).
type Client struct {
	cfg ClientConfig
	clk clock.Clock
	rng *rand.Rand
	log *slog.Logger

	connMu sync.Mutex
	conn   *net.UDPConn

	txSeq uint64
	rdBuf []byte

	// Reconnects and Recoveries record the resume path's work: attempts
	// that re-attached, and outage-to-resume durations for each.
	Reconnects int
	Recoveries []time.Duration
}

// NewClient validates the config. The socket is dialed by Send.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("session: client needs a gateway address")
	}
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, clk: cfg.Clock, rng: cfg.Rand, log: cfg.Logger,
		rdBuf: make([]byte, 64*1024)}, nil
}

// SessionID returns the transfer's identity.
func (c *Client) SessionID() uint64 { return c.cfg.SessionID }

// Kill closes the client's current socket, simulating an abrupt peer death
// mid-transfer. The next I/O fails and Send enters its reconnect path. Safe
// to call concurrently with Send, any number of times.
func (c *Client) Kill() {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
}

func (c *Client) dial() error {
	ua, err := net.ResolveUDPAddr("udp", c.cfg.Addr)
	if err != nil {
		return fmt.Errorf("session: resolve %q: %w", c.cfg.Addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return fmt.Errorf("session: dial %q: %w", c.cfg.Addr, err)
	}
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	c.connMu.Unlock()
	return nil
}

func (c *Client) closeConn() {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

func (c *Client) currentConn() *net.UDPConn {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn
}

// sendMsg frames m as a radio data frame and transmits it through the
// fault-injection intercept.
func (c *Client) sendMsg(m *Msg) error {
	conn := c.currentConn()
	if conn == nil {
		return errors.New("session: connection closed")
	}
	payload, err := AppendMessage(nil, m)
	if err != nil {
		return err
	}
	c.txSeq++
	frame, err := radio.EncodeDataFrame(nil, radio.Header{Seq: c.txSeq, SessionID: c.cfg.SessionID}, payload)
	if err != nil {
		return err
	}
	if c.cfg.Intercept != nil {
		for _, d := range c.cfg.Intercept(frame) {
			if _, err := conn.Write(d); err != nil {
				return err
			}
		}
		return nil
	}
	_, err = conn.Write(frame)
	return err
}

// readMsg blocks until one well-formed message for this session arrives or
// the deadline passes. Foreign, corrupt, or truncated datagrams are skipped.
func (c *Client) readMsg(deadline time.Time) (*Msg, error) {
	conn := c.currentConn()
	if conn == nil {
		return nil, errors.New("session: connection closed")
	}
	buf := c.rdBuf
	for {
		if err := conn.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		h, err := radio.DecodeHeader(buf[:n])
		if err != nil || !h.IsData() || h.SessionID != c.cfg.SessionID {
			continue
		}
		body, err := radio.DecodeDataPayload(h, buf[h.HeaderLen():n])
		if err != nil {
			continue
		}
		m, err := DecodeMessage(body)
		if err != nil {
			continue
		}
		m.Session = h.SessionID
		return m, nil
	}
}

// fail wraps a terminal reason as the typed fail-closed error.
func (c *Client) fail(reason string) error {
	if c.log != nil {
		c.log.Warn("transfer failed", "session", c.cfg.SessionID, "reason", reason)
	}
	return &SessionError{ID: c.cfg.SessionID, Reason: reason}
}

// backoffWait sleeps a capped exponential backoff with ±50% jitter for the
// given 1-based attempt, honoring ctx.
func (c *Client) backoffWait(ctx context.Context, attempt int, base, max time.Duration) error {
	d := base
	for i := 1; i < attempt; i++ {
		if d >= max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	d += time.Duration((c.rng.Float64() - 0.5) * float64(d))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	t := c.clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// xfer is the mutable per-attempt transfer state rebuilt on every
// (re)connect: a fresh ARQ epoch over the not-yet-delivered suffix.
type xfer struct {
	arq     *mac.ARQSender
	seqIdx  map[uint16]uint64 // ARQ seq → chunk index
	idxSeq  map[uint64]uint16
	nextIdx uint64
	credit  int
}

// Send delivers data reliably and returns nil only when the gateway
// confirmed the complete, contiguous transfer (FIN-ACK). Any terminal
// failure — reset from the peer, exhausted reconnect or handshake budget,
// cancelled context — is a *SessionError and the session is dead.
func (c *Client) Send(ctx context.Context, data []byte) error {
	cfg := &c.cfg
	if err := c.dial(); err != nil {
		return c.fail("dial: " + err.Error())
	}
	defer c.closeConn()

	total := uint64(len(data))
	hello := &Msg{Kind: KindHello, Total: total, ChunkSize: uint32(cfg.ChunkSize)}
	ack, err := c.exchange(ctx, hello, KindHelloAck)
	if err != nil {
		return err
	}
	chunk := uint64(ack.ChunkSize)
	if chunk == 0 || chunk > uint64(MaxChunkBytes) {
		return c.fail("bad-chunk-grant")
	}
	numChunks := (total + chunk - 1) / chunk
	cum := uint64(0)

	x, err := c.newXfer(cum, chunk, int(ack.Credit))
	if err != nil {
		return c.fail(err.Error())
	}

	deadRounds := 0
	finCycles := 0
transfer:
	for cum < total || x.arq.Outstanding() > 0 {
		if ctx.Err() != nil {
			return c.fail("shutdown")
		}
		// Fill the window up to both the ARQ bound and the peer's credit.
		limit := x.credit
		if limit > cfg.Window {
			limit = cfg.Window
		}
		for x.arq.Outstanding() < limit && x.nextIdx < numChunks {
			off := x.nextIdx * chunk
			end := off + chunk
			if end > total {
				end = total
			}
			payload := make([]byte, 8+(end-off))
			binary.BigEndian.PutUint64(payload, off)
			copy(payload[8:], data[off:end])
			seq := x.arq.Queue(payload)
			x.seqIdx[seq] = x.nextIdx
			x.idxSeq[x.nextIdx] = seq
			x.nextIdx++
		}
		// Transmit this round's frames (first attempts and retries alike).
		frames := x.arq.Round()
		if x.arq.Dropped > 0 {
			// A chunk exhausted its retry budget: this link attempt is
			// dead. Reconnect and resume from the gateway's high water.
			cum, x, err = c.reconnect(ctx, total, chunk, "retry-budget")
			if err != nil {
				return err
			}
			deadRounds = 0
			continue
		}
		sendErr := false
		for _, f := range frames {
			mpdu, err := f.Encode()
			if err != nil {
				return c.fail("encode: " + err.Error())
			}
			if err := c.sendMsg(&Msg{Kind: KindData, MPDU: mpdu}); err != nil {
				sendErr = true
				break
			}
		}
		// Collect acknowledgements until the round deadline.
		released := false
		finished := false
		peerLost := false
		deadline := c.clk.Now().Add(cfg.AckTimeout)
		for !sendErr && !peerLost {
			m, err := c.readMsg(deadline)
			if err != nil {
				if isTimeout(err) {
					break
				}
				sendErr = true
				break
			}
			switch m.Kind {
			case KindAck:
				x.credit = int(m.Credit)
				if c.applyAck(x, m, chunk, total) {
					released = true
				}
				if m.CumOffset > cum {
					cum = m.CumOffset
				}
			case KindReset:
				if m.Reason == "unknown-session" {
					// The peer restarted and lost our session: resume
					// re-creates it (from its surviving high-water mark,
					// or offset zero after total state loss).
					peerLost = true
					continue
				}
				return c.fail(reasonOrDefault(m.Reason, "peer-reset"))
			default:
				// Only ACK and RESET are meaningful mid-transfer; anything
				// else (stray handshake traffic, future kinds) is ignored.
			}
			if x.arq.Outstanding() == 0 {
				// Window drained: either done or ready to queue more.
				finished = cum >= total && x.nextIdx >= numChunks
				break
			}
		}
		if sendErr || peerLost {
			cause := "io-error"
			if peerLost {
				cause = "peer-lost-state"
			}
			cum, x, err = c.reconnect(ctx, total, chunk, cause)
			if err != nil {
				return err
			}
			deadRounds = 0
			continue
		}
		if finished {
			break
		}
		if released {
			deadRounds = 0
			continue
		}
		// Zero-progress round: feed the ARQ backoff and, past the dead
		// threshold, give up on this link attempt entirely.
		deadRounds++
		if x.arq.Outstanding() > 0 {
			x.arq.Apply(mac.BlockAck{})
		}
		if deadRounds >= cfg.DeadRounds {
			cum, x, err = c.reconnect(ctx, total, chunk, "dead-link")
			if err != nil {
				return err
			}
			deadRounds = 0
			continue
		}
		if d := x.arq.RetryDelay(); d > 0 {
			t := c.clk.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return c.fail("shutdown")
			}
		}
	}

	// FIN: the gateway confirms it holds all bytes contiguously. A peer
	// that restarted between the last ack and the FIN answers
	// "unknown-session"; resume and, if its high-water mark regressed,
	// re-enter the transfer loop.
	fin := &Msg{Kind: KindFin, Total: total}
	if _, err := c.exchange(ctx, fin, KindFinAck); err != nil {
		var se *SessionError
		if errors.As(err, &se) && se.Reason == "unknown-session" && finCycles < 3 {
			finCycles++
			cum, x, err = c.reconnect(ctx, total, chunk, "peer-lost-state")
			if err != nil {
				return err
			}
			deadRounds = 0
			goto transfer
		}
		return err
	}
	if c.log != nil {
		c.log.Info("transfer completed", "session", c.cfg.SessionID,
			"bytes", total, "reconnects", c.Reconnects)
	}
	return nil
}

// newXfer builds a fresh ARQ epoch starting at the given cumulative offset.
func (c *Client) newXfer(cum, chunk uint64, credit int) (*xfer, error) {
	arq, err := mac.NewARQSender(c.cfg.Window)
	if err != nil {
		return nil, err
	}
	arq.MaxRetries = c.cfg.MaxRetries
	arq.BackoffBase = c.cfg.BackoffBase
	arq.BackoffMax = c.cfg.BackoffMax
	arq.JitterFrac = c.cfg.JitterFrac
	arq.SetJitterSource(c.rng)
	if credit <= 0 {
		credit = 1
	}
	return &xfer{
		arq:     arq,
		seqIdx:  make(map[uint16]uint64),
		idxSeq:  make(map[uint64]uint16),
		nextIdx: cum / chunk,
		credit:  credit,
	}, nil
}

// applyAck translates the gateway's reassembly report into this epoch's ARQ
// sequence space and applies it as one synthetic Block Ack. Returns whether
// anything was released.
func (c *Client) applyAck(x *xfer, m *Msg, chunk, total uint64) bool {
	cumIdx := m.CumOffset / chunk
	var releasedSeqs []uint16
	for seq, idx := range x.seqIdx {
		end := (idx + 1) * chunk
		if end > total {
			end = total
		}
		covered := end <= m.CumOffset
		if !covered {
			// The bitmap is anchored at the chunk index just past cum.
			if off := idx - cumIdx; idx >= cumIdx && off < 64 && m.Ack.Bitmap&(1<<off) != 0 {
				covered = true
			}
		}
		if covered {
			releasedSeqs = append(releasedSeqs, seq)
			delete(x.seqIdx, seq)
			delete(x.idxSeq, idx)
		}
	}
	if len(releasedSeqs) == 0 {
		return false
	}
	// Anchor the synthetic ack at the oldest released sequence; the window
	// is ≤ 64 so every released sequence fits the bitmap.
	start := releasedSeqs[0]
	for _, s := range releasedSeqs[1:] {
		if int16((s-start)<<4)>>4 < 0 { // circular 12-bit compare
			start = s
		}
	}
	ba := mac.BlockAck{Start: start}
	for _, s := range releasedSeqs {
		if off := int(s-start) & 0x0FFF; off < 64 {
			ba.Bitmap |= 1 << uint(off)
		}
	}
	x.arq.Apply(ba)
	return true
}

// exchange sends req and waits for an ack of the wanted kind, retrying with
// backoff up to the handshake budget. RESUME, HELLO, and FIN all use it.
func (c *Client) exchange(ctx context.Context, req *Msg, want Kind) (*Msg, error) {
	for attempt := 1; attempt <= c.cfg.HandshakeRetries; attempt++ {
		if ctx.Err() != nil {
			return nil, c.fail("shutdown")
		}
		if err := c.sendMsg(req); err != nil {
			// The socket died under us; for HELLO/FIN the caller-level
			// reconnect cannot help — redial here.
			if derr := c.dial(); derr != nil {
				return nil, c.fail("dial: " + derr.Error())
			}
			continue
		}
		deadline := c.clk.Now().Add(c.cfg.HandshakeTimeout)
		for {
			m, err := c.readMsg(deadline)
			if err != nil {
				if isTimeout(err) {
					break
				}
				if derr := c.dial(); derr != nil {
					return nil, c.fail("dial: " + derr.Error())
				}
				break
			}
			if m.Kind == want {
				return m, nil
			}
			if m.Kind == KindReset {
				return nil, c.fail(reasonOrDefault(m.Reason, "peer-reset"))
			}
			// Stale ack from a prior round: keep reading.
		}
		if err := c.backoffWait(ctx, attempt, c.cfg.ReconnectBase, c.cfg.ReconnectMax); err != nil {
			return nil, c.fail("shutdown")
		}
	}
	return nil, c.fail(req.Kind.String() + "-timeout")
}

// reconnect runs the resume path: close the dead socket, back off with
// jitter, re-dial, RESUME, and rebuild the transfer epoch at the gateway's
// contiguous high-water mark. Budget exhaustion or an explicit RESET fails
// the session closed.
func (c *Client) reconnect(ctx context.Context, total, chunk uint64, cause string) (uint64, *xfer, error) {
	outage := c.clk.Now()
	if c.log != nil {
		c.log.Info("reconnecting", "session", c.cfg.SessionID, "cause", cause)
	}
	for attempt := 1; attempt <= c.cfg.MaxReconnects; attempt++ {
		if err := c.backoffWait(ctx, attempt, c.cfg.ReconnectBase, c.cfg.ReconnectMax); err != nil {
			return 0, nil, c.fail("shutdown")
		}
		if err := c.dial(); err != nil {
			continue
		}
		resume := &Msg{Kind: KindResume, Total: total, ChunkSize: uint32(chunk)}
		if err := c.sendMsg(resume); err != nil {
			continue
		}
		deadline := c.clk.Now().Add(c.cfg.HandshakeTimeout)
		m, err := c.readMsg(deadline)
		if err != nil {
			continue
		}
		switch m.Kind {
		case KindResumeAck:
			cum := m.CumOffset
			x, err := c.newXfer(cum, chunk, int(m.Credit))
			if err != nil {
				return 0, nil, c.fail(err.Error())
			}
			c.Reconnects++
			c.Recoveries = append(c.Recoveries, c.clk.Since(outage))
			if c.log != nil {
				c.log.Info("resumed", "session", c.cfg.SessionID, "cum", cum,
					"attempt", attempt, "outage", c.clk.Since(outage))
			}
			return cum, x, nil
		case KindReset:
			return 0, nil, c.fail(reasonOrDefault(m.Reason, "peer-reset"))
		default:
			// Stale ACKs and data-phase traffic race the resume handshake;
			// keep waiting for the RESUME-ACK (or the deadline).
		}
	}
	return 0, nil, c.fail("reconnect-budget")
}

func reasonOrDefault(reason, def string) string {
	if reason != "" {
		return reason
	}
	return def
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
