package preamble

import (
	"fmt"

	"repro/internal/bitutil"
)

// LSIG is the legacy SIGNAL field content (IEEE 802.11-2012 §18.3.4). In the
// HT-mixed format the rate is pinned to 6 Mbit/s and the length spoofs the
// frame duration for legacy listeners.
type LSIG struct {
	// Rate is the 4-bit RATE code (0b1101 = 6 Mbit/s).
	Rate byte
	// Length is the 12-bit LENGTH field in octets.
	Length int
}

// Rate6Mbps is the RATE code carried by every HT-mixed L-SIG.
const Rate6Mbps = 0b1101

// Bits serializes the 24-bit L-SIG: RATE(4), reserved(1), LENGTH(12),
// even parity(1), tail(6).
func (s LSIG) Bits() ([]byte, error) {
	if s.Length < 0 || s.Length > 0xFFF {
		return nil, fmt.Errorf("preamble: L-SIG length %d out of 12-bit range", s.Length)
	}
	bits := make([]byte, 0, 24)
	bits = append(bits, bitutil.Uint16ToBits(uint16(s.Rate), 4)...)
	bits = append(bits, 0) // reserved
	bits = append(bits, bitutil.Uint16ToBits(uint16(s.Length), 12)...)
	bits = append(bits, bitutil.EvenParity(bits))
	bits = append(bits, 0, 0, 0, 0, 0, 0) // tail
	return bits, nil
}

// ParseLSIG validates parity and tail and decodes the fields.
func ParseLSIG(bits []byte) (LSIG, error) {
	if len(bits) != 24 {
		return LSIG{}, fmt.Errorf("preamble: L-SIG needs 24 bits, got %d", len(bits))
	}
	if p := bitutil.EvenParity(bits[:18]); p != 0 {
		return LSIG{}, fmt.Errorf("preamble: L-SIG parity error")
	}
	for _, b := range bits[18:] {
		if b&1 != 0 {
			return LSIG{}, fmt.Errorf("preamble: L-SIG tail bits nonzero")
		}
	}
	return LSIG{
		Rate:   byte(bitutil.BitsToUint(bits[:4])),
		Length: int(bitutil.BitsToUint(bits[5:17])),
	}, nil
}

// HTSIG is the HT SIGNAL field content (IEEE 802.11-2012 §20.3.9.4.3),
// restricted to the features the paper's transceiver uses: BCC coding, long
// guard interval, no STBC, no aggregation, 20 MHz.
type HTSIG struct {
	// MCS is the 7-bit modulation and coding scheme index (0-76; this
	// implementation uses 0-31, the equal-modulation N_SS 1-4 range).
	MCS int
	// CBW40 selects 40 MHz operation; always false here.
	CBW40 bool
	// Length is the 16-bit HT length: the number of PSDU octets.
	Length int
	// Smoothing advises the receiver that frequency smoothing of the
	// channel estimate is permissible.
	Smoothing bool
	// ShortGI selects the 400 ns guard interval for the data symbols.
	ShortGI bool
}

// Bits serializes the 48-bit HT-SIG (both 24-bit parts concatenated),
// computing the CRC-8 over the first 34 bits.
func (s HTSIG) Bits() ([]byte, error) {
	if s.MCS < 0 || s.MCS > 127 {
		return nil, fmt.Errorf("preamble: MCS %d out of 7-bit range", s.MCS)
	}
	if s.Length < 0 || s.Length > 0xFFFF {
		return nil, fmt.Errorf("preamble: HT length %d out of 16-bit range", s.Length)
	}
	bits := make([]byte, 0, 48)
	bits = append(bits, bitutil.Uint16ToBits(uint16(s.MCS), 7)...)
	bits = append(bits, boolBit(s.CBW40))
	bits = append(bits, bitutil.Uint16ToBits(uint16(s.Length), 16)...)
	// HT-SIG2 bits 0..9.
	bits = append(bits, boolBit(s.Smoothing))
	bits = append(bits, 1)                         // not sounding
	bits = append(bits, 1)                         // reserved, always 1
	bits = append(bits, 0)                         // aggregation
	bits = append(bits, 0, 0)                      // STBC
	bits = append(bits, 0)                         // FEC coding: BCC
	bits = append(bits, boolBit(s.ShortGI))        // short GI
	bits = append(bits, 0, 0)                      // no extension spatial streams
	bits = append(bits, bitutil.CRC8Bits(bits)...) // CRC over the 34 bits so far
	bits = append(bits, 0, 0, 0, 0, 0, 0)          // tail
	return bits, nil
}

// ParseHTSIG validates the CRC and tail and decodes the fields.
func ParseHTSIG(bits []byte) (HTSIG, error) {
	if len(bits) != 48 {
		return HTSIG{}, fmt.Errorf("preamble: HT-SIG needs 48 bits, got %d", len(bits))
	}
	crc := bitutil.CRC8Bits(bits[:34])
	for i, c := range crc {
		if bits[34+i]&1 != c {
			return HTSIG{}, fmt.Errorf("preamble: HT-SIG CRC mismatch")
		}
	}
	for _, b := range bits[42:] {
		if b&1 != 0 {
			return HTSIG{}, fmt.Errorf("preamble: HT-SIG tail bits nonzero")
		}
	}
	return HTSIG{
		MCS:       int(bitutil.BitsToUint(bits[:7])),
		CBW40:     bits[7]&1 == 1,
		Length:    int(bitutil.BitsToUint(bits[8:24])),
		Smoothing: bits[24]&1 == 1,
		ShortGI:   bits[31]&1 == 1,
	}, nil
}

func boolBit(b bool) byte {
	if b {
		return 1
	}
	return 0
}
