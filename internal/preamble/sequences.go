// Package preamble constructs and parses the IEEE 802.11n HT-mixed-format
// preamble: the legacy short and long training fields (L-STF, L-LTF), the
// SIGNAL fields (L-SIG, HT-SIG), the HT short and long training fields
// (HT-STF, HT-LTF) with their per-chain cyclic shifts and the orthogonal
// P-matrix mapping across spatial streams — everything the paper's receiver
// needs for synchronization and MIMO channel estimation.
package preamble

import (
	"math"

	"repro/internal/dsp"
	"repro/internal/ofdm"
)

// Field durations in samples at 20 MHz.
const (
	LSTFLen  = 160 // 10 short symbols of 16 samples
	LLTFLen  = 160 // 32-sample CP + two 64-sample long symbols
	HTSTFLen = 80
	HTLTFLen = 80 // per HT-LTF symbol
)

// lstfFreq returns the 64-bin L-STF frequency sequence
// (IEEE 802.11-2012 eq. 18-7), including the √(13/6) power normalization.
func lstfFreq() []complex128 {
	bins := make([]complex128, ofdm.FFTSize)
	s := math.Sqrt(13.0 / 6.0)
	p := complex(s, s)
	m := complex(-s, -s)
	vals := map[int]complex128{
		4: m, 8: m, 12: m, 16: p, 20: p, 24: p,
		-4: m, -8: m, -12: m, -16: p, -20: m, -24: p,
	}
	for k, v := range vals {
		bins[(k+ofdm.FFTSize)%ofdm.FFTSize] = v
	}
	return bins
}

// lltfSeq is the legacy LTF subcarrier sequence L_{−26..26}
// (IEEE 802.11-2012 eq. 18-11), DC included as 0.
var lltfSeq = []float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// lltfFreq returns the 64-bin L-LTF frequency vector.
func lltfFreq() []complex128 {
	bins := make([]complex128, ofdm.FFTSize)
	for i, v := range lltfSeq {
		k := i - 26
		bins[(k+ofdm.FFTSize)%ofdm.FFTSize] = complex(v, 0)
	}
	return bins
}

// htltfFreq returns the 64-bin HT-LTF frequency vector
// (IEEE 802.11-2012 eq. 20-24): the L-LTF sequence extended to ±28 with
// {1, 1} below and {−1, −1} above.
func htltfFreq() []complex128 {
	bins := lltfFreq()
	bins[(-28+ofdm.FFTSize)%ofdm.FFTSize] = 1
	bins[(-27+ofdm.FFTSize)%ofdm.FFTSize] = 1
	bins[27] = -1
	bins[28] = -1
	return bins
}

// Cached frequency-domain sequences. Treat as read-only.
var (
	// LSTFFreq is the 64-bin L-STF (and 20 MHz HT-STF) frequency sequence.
	LSTFFreq = lstfFreq()
	// LLTFFreq is the 64-bin L-LTF frequency sequence.
	LLTFFreq = lltfFreq()
	// HTLTFFreq is the 64-bin HT-LTF frequency sequence.
	HTLTFFreq = htltfFreq()
)

// ifft64 converts a 64-bin frequency vector to 64 time samples with the
// N/√normTones normalization of the standard's transmit equations. The STF
// sequences carry a √(13/6) amplitude so that the 52-tone normalization used
// for every legacy field yields unit power despite only 12 occupied tones.
func ifft64(bins []complex128, normTones int) []complex128 {
	fft := dsp.MustFFT(ofdm.FFTSize)
	out := make([]complex128, ofdm.FFTSize)
	fft.Inverse(out, bins)
	dsp.Scale(out, float64(ofdm.FFTSize)/math.Sqrt(float64(normTones)))
	return out
}

// LSTF returns the 160-sample legacy short training field: the 16-sample
// periodic base tiled ten times.
func LSTF() []complex128 {
	base := ifft64(LSTFFreq, 52)
	out := make([]complex128, LSTFLen)
	for i := range out {
		out[i] = base[i%ofdm.FFTSize]
	}
	return out
}

// LLTF returns the 160-sample legacy long training field: a 32-sample cyclic
// prefix followed by two repetitions of the 64-sample long symbol.
func LLTF() []complex128 {
	base := ifft64(LLTFFreq, 52)
	out := make([]complex128, LLTFLen)
	copy(out[:32], base[32:])
	copy(out[32:96], base)
	copy(out[96:], base)
	return out
}

// HTSTF returns the 80-sample HT short training field (one symbol period of
// the periodic STF waveform).
func HTSTF() []complex128 {
	base := ifft64(LSTFFreq, 52)
	out := make([]complex128, HTSTFLen)
	for i := range out {
		out[i] = base[i%ofdm.FFTSize]
	}
	return out
}

// HTLTFSymbol returns one 80-sample HT-LTF symbol (16-sample CP + 64-sample
// body) with the frequency sequence scaled by the given factor (the caller
// applies the P-matrix entry and the 1/√N_STS power split).
func HTLTFSymbol(scale complex128) []complex128 {
	bins := make([]complex128, ofdm.FFTSize)
	for i, v := range HTLTFFreq {
		bins[i] = v * scale
	}
	base := ifft64(bins, 56)
	out := make([]complex128, HTLTFLen)
	copy(out[:ofdm.CPLen], base[ofdm.FFTSize-ofdm.CPLen:])
	copy(out[ofdm.CPLen:], base)
	return out
}

// NumHTLTF returns N_HTLTF, the number of HT long training symbols for the
// given spatial stream count (IEEE 802.11-2012 Table 20-13).
func NumHTLTF(nss int) int {
	switch nss {
	case 1:
		return 1
	case 2:
		return 2
	case 3, 4:
		return 4
	}
	panic("preamble: N_SS out of range [1,4]")
}

// PMatrix is the orthogonal HT-LTF mapping matrix P_HTLTF
// (IEEE 802.11-2012 eq. 20-27). Stream iss transmits P[iss][n]·HTLTF in
// long-training symbol n.
var PMatrix = [4][4]float64{
	{1, -1, 1, 1},
	{1, 1, -1, 1},
	{1, 1, 1, -1},
	{-1, 1, 1, 1},
}
