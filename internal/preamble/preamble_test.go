package preamble

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/ofdm"
)

func TestLSTFPeriodicity(t *testing.T) {
	stf := LSTF()
	if len(stf) != LSTFLen {
		t.Fatalf("L-STF length %d", len(stf))
	}
	// Period 16 samples.
	for i := 0; i < LSTFLen-16; i++ {
		if cmplx.Abs(stf[i]-stf[i+16]) > 1e-12 {
			t.Fatalf("L-STF not 16-periodic at %d", i)
		}
	}
}

func TestLSTFOccupiedTones(t *testing.T) {
	nz := 0
	for _, v := range LSTFFreq {
		if v != 0 {
			nz++
			if math.Abs(cmplx.Abs(v)-math.Sqrt(13.0/6.0)*math.Sqrt2) > 1e-12 {
				t.Errorf("STF tone magnitude %g", cmplx.Abs(v))
			}
		}
	}
	if nz != 12 {
		t.Errorf("L-STF occupies %d tones, want 12", nz)
	}
}

func TestLLTFStructure(t *testing.T) {
	ltf := LLTF()
	if len(ltf) != LLTFLen {
		t.Fatalf("L-LTF length %d", len(ltf))
	}
	// Two identical 64-sample symbols.
	for i := 0; i < 64; i++ {
		if cmplx.Abs(ltf[32+i]-ltf[96+i]) > 1e-12 {
			t.Fatalf("L-LTF symbols differ at %d", i)
		}
	}
	// 32-sample CP equals the tail of the symbol.
	for i := 0; i < 32; i++ {
		if cmplx.Abs(ltf[i]-ltf[128+i]) > 1e-12 {
			t.Fatalf("L-LTF CP mismatch at %d", i)
		}
	}
}

func TestLLTFSequenceLength(t *testing.T) {
	if len(lltfSeq) != 53 {
		t.Fatalf("L-LTF sequence has %d entries, want 53", len(lltfSeq))
	}
	if lltfSeq[26] != 0 {
		t.Error("L-LTF DC must be 0")
	}
	nz := 0
	for _, v := range LLTFFreq {
		if v != 0 {
			nz++
		}
	}
	if nz != 52 {
		t.Errorf("L-LTF occupies %d tones, want 52", nz)
	}
}

func TestHTLTFExtension(t *testing.T) {
	f := HTLTFFreq
	get := func(k int) complex128 { return f[(k+ofdm.FFTSize)%ofdm.FFTSize] }
	if get(-28) != 1 || get(-27) != 1 {
		t.Error("HT-LTF lower extension wrong")
	}
	if get(27) != -1 || get(28) != -1 {
		t.Error("HT-LTF upper extension wrong")
	}
	// Interior matches L-LTF.
	for k := -26; k <= 26; k++ {
		if get(k) != LLTFFreq[(k+ofdm.FFTSize)%ofdm.FFTSize] {
			t.Errorf("HT-LTF differs from L-LTF at k=%d", k)
		}
	}
	nz := 0
	for _, v := range f {
		if v != 0 {
			nz++
		}
	}
	if nz != 56 {
		t.Errorf("HT-LTF occupies %d tones, want 56", nz)
	}
}

func TestHTLTFSymbolCP(t *testing.T) {
	sym := HTLTFSymbol(1)
	if len(sym) != HTLTFLen {
		t.Fatalf("HT-LTF symbol length %d", len(sym))
	}
	for i := 0; i < ofdm.CPLen; i++ {
		if cmplx.Abs(sym[i]-sym[ofdm.FFTSize+i]) > 1e-12 {
			t.Fatalf("HT-LTF CP mismatch at %d", i)
		}
	}
	scaled := HTLTFSymbol(complex(0.5, 0))
	for i := range sym {
		if cmplx.Abs(scaled[i]-sym[i]*0.5) > 1e-12 {
			t.Fatal("HT-LTF scaling broken")
		}
	}
}

func TestTrainingFieldPowers(t *testing.T) {
	for name, sig := range map[string][]complex128{
		"L-STF": LSTF(), "L-LTF": LLTF(), "HT-STF": HTSTF(), "HT-LTF": HTLTFSymbol(1),
	} {
		p := dsp.Power(sig)
		if math.Abs(p-1) > 0.05 {
			t.Errorf("%s power %g, want ≈ 1", name, p)
		}
	}
}

func TestNumHTLTF(t *testing.T) {
	for nss, want := range map[int]int{1: 1, 2: 2, 3: 4, 4: 4} {
		if got := NumHTLTF(nss); got != want {
			t.Errorf("NumHTLTF(%d) = %d, want %d", nss, got, want)
		}
	}
}

func TestPMatrixOrthogonal(t *testing.T) {
	// Rows of P (restricted to the first N_LTF columns) must be orthogonal
	// — this is what makes per-stream channel estimation separable.
	for _, nltf := range []int{2, 4} {
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				var dot float64
				for n := 0; n < nltf; n++ {
					dot += PMatrix[a][n] * PMatrix[b][n]
				}
				if a == b && math.Abs(dot-float64(nltf)) > 1e-12 {
					t.Errorf("P row %d norm %g", a, dot)
				}
				if a != b && nltf == 4 && math.Abs(dot) > 1e-12 {
					t.Errorf("P rows %d,%d not orthogonal: %g", a, b, dot)
				}
			}
		}
	}
	// For N_LTF=2 only the first N_SS=2 rows need orthogonality.
	dot := PMatrix[0][0]*PMatrix[1][0] + PMatrix[0][1]*PMatrix[1][1]
	if math.Abs(dot) > 1e-12 {
		t.Errorf("P first two rows not orthogonal over 2 columns: %g", dot)
	}
}

func TestCSDSampleValues(t *testing.T) {
	if got := LegacyCSDSamples(1, 2); got != -4 {
		t.Errorf("legacy CSD chain 2 = %d samples, want -4 (-200ns)", got)
	}
	if got := HTCSDSamples(1, 2); got != -8 {
		t.Errorf("HT CSD stream 2 = %d samples, want -8 (-400ns)", got)
	}
	if got := HTCSDSamples(0, 1); got != 0 {
		t.Errorf("HT CSD stream 1 = %d, want 0", got)
	}
}

func TestCyclicShiftAdvances(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5, 6, 7}
	y := CyclicShift(x, -2)
	want := []complex128{2, 3, 4, 5, 6, 7, 0, 1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("CyclicShift(-2) = %v, want %v", y, want)
		}
	}
	z := CyclicShift(x, 0)
	for i := range x {
		if z[i] != x[i] {
			t.Fatal("zero shift must be identity")
		}
	}
}

func TestCyclicShiftSymbolKeepsCP(t *testing.T) {
	sym := HTLTFSymbol(1)
	shifted := CyclicShiftSymbol(sym, -8)
	for i := 0; i < ofdm.CPLen; i++ {
		if cmplx.Abs(shifted[i]-shifted[ofdm.FFTSize+i]) > 1e-12 {
			t.Fatalf("shifted symbol CP broken at %d", i)
		}
	}
	// Body must be the rotated original body.
	for i := 0; i < ofdm.FFTSize; i++ {
		if cmplx.Abs(shifted[ofdm.CPLen+i]-sym[ofdm.CPLen+(i+8)%64]) > 1e-12 {
			t.Fatalf("body rotation wrong at %d", i)
		}
	}
}

func TestCSDIsPhaseRampInFrequency(t *testing.T) {
	// A cyclic shift in time is a per-subcarrier phase ramp in frequency:
	// the shifted LTF's FFT must equal HTLTFFreq[k]·exp(-j2πk·d/64).
	d := -8
	sym := CyclicShiftSymbol(HTLTFSymbol(1), d)
	fft := dsp.MustFFT(64)
	bins := make([]complex128, 64)
	fft.Forward(bins, sym[ofdm.CPLen:])
	scale := math.Sqrt(56.0) / 64.0
	for k := 0; k < 64; k++ {
		want := HTLTFFreq[k] * cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(d)/64))
		got := bins[k] * complex(scale, 0)
		if cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("bin %d: got %v want %v", k, got, want)
		}
	}
}

func TestLSIGRoundTrip(t *testing.T) {
	prop := func(length uint16) bool {
		s := LSIG{Rate: Rate6Mbps, Length: int(length & 0xFFF)}
		bits, err := s.Bits()
		if err != nil || len(bits) != 24 {
			return false
		}
		got, err := ParseLSIG(bits)
		return err == nil && got == s
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLSIGDetectsCorruption(t *testing.T) {
	s := LSIG{Rate: Rate6Mbps, Length: 1234}
	bits, _ := s.Bits()
	bits[6] ^= 1
	if _, err := ParseLSIG(bits); err == nil {
		t.Error("parity should catch a single flipped bit")
	}
	if _, err := (LSIG{Rate: 1, Length: 5000}).Bits(); err == nil {
		t.Error("over-long length should error")
	}
	if _, err := ParseLSIG(make([]byte, 10)); err == nil {
		t.Error("short input should error")
	}
}

func TestHTSIGRoundTrip(t *testing.T) {
	prop := func(mcs uint8, length uint16, smoothing bool) bool {
		s := HTSIG{MCS: int(mcs & 0x1F), Length: int(length), Smoothing: smoothing}
		bits, err := s.Bits()
		if err != nil || len(bits) != 48 {
			return false
		}
		got, err := ParseHTSIG(bits)
		return err == nil && got == s
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHTSIGCRCDetectsCorruption(t *testing.T) {
	s := HTSIG{MCS: 11, Length: 1500, Smoothing: true}
	bits, _ := s.Bits()
	for pos := 0; pos < 34; pos++ {
		c := append([]byte(nil), bits...)
		c[pos] ^= 1
		if _, err := ParseHTSIG(c); err == nil {
			t.Fatalf("flipped bit %d not detected by CRC", pos)
		}
	}
}

func TestHTSIGValidation(t *testing.T) {
	if _, err := (HTSIG{MCS: 200}).Bits(); err == nil {
		t.Error("oversized MCS should error")
	}
	if _, err := (HTSIG{Length: 70000}).Bits(); err == nil {
		t.Error("oversized length should error")
	}
	if _, err := ParseHTSIG(make([]byte, 24)); err == nil {
		t.Error("short HT-SIG should error")
	}
}
