package preamble

import "repro/internal/ofdm"

// Cyclic shift values in nanoseconds (IEEE 802.11-2012 Tables 20-8 and
// 20-9). At 20 MHz one sample is 50 ns, so all values are whole samples.
var (
	legacyCSDns = [4]int{0, -200, -100, -50}
	htCSDns     = [4]int{0, -400, -200, -600}
)

// LegacyCSDSamples returns the clause-20 legacy-portion cyclic shift for
// transmit chain iTX (0-based) of nTX chains, in samples (≤ 0).
func LegacyCSDSamples(iTX, nTX int) int {
	checkChain(iTX, nTX)
	return legacyCSDns[iTX] * int(ofdm.SampleRate) / 1_000_000_000
}

// HTCSDSamples returns the HT-portion cyclic shift for space-time stream
// iSTS (0-based) of nSTS streams, in samples (≤ 0).
func HTCSDSamples(iSTS, nSTS int) int {
	checkChain(iSTS, nSTS)
	return htCSDns[iSTS] * int(ofdm.SampleRate) / 1_000_000_000
}

func checkChain(i, n int) {
	if n < 1 || n > 4 || i < 0 || i >= n {
		panic("preamble: chain index out of range")
	}
}

// CyclicShift rotates one OFDM symbol period left by -shift samples (shift
// is negative per the tables, meaning the waveform is advanced cyclically).
// The rotation is applied over the full periodic extent of the slice: for an
// 80-sample symbol the CP must be re-derived by the caller; for the periodic
// STF the whole field can be rotated directly.
func CyclicShift(x []complex128, shift int) []complex128 {
	n := len(x)
	if n == 0 || shift%n == 0 {
		out := make([]complex128, n)
		copy(out, x)
		return out
	}
	s := ((shift % n) + n) % n // left-rotation amount for negative shift
	out := make([]complex128, n)
	// A cyclic shift of t_CS (negative) delays by |t_CS| cyclically:
	// y[i] = x[(i - shift) mod n]; with shift negative this advances.
	for i := range out {
		out[i] = x[((i-s)%n+n)%n]
	}
	return out
}

// CyclicShiftSymbol applies a cyclic shift to the 64-sample body of an
// 80-sample CP-OFDM symbol and rebuilds the prefix, which is how the
// standard defines CSD (a shift of the IFFT output before CP insertion).
func CyclicShiftSymbol(sym []complex128, shift int) []complex128 {
	return CyclicShiftSymbolCP(sym, shift, ofdm.CPLen)
}

// CyclicShiftSymbolCP is CyclicShiftSymbol for an arbitrary guard length
// (8 for short-GI data symbols).
func CyclicShiftSymbolCP(sym []complex128, shift, cpLen int) []complex128 {
	if len(sym) != ofdm.FFTSize+cpLen {
		panic("preamble: CyclicShiftSymbolCP length mismatch")
	}
	body := CyclicShift(sym[cpLen:], shift)
	out := make([]complex128, len(sym))
	copy(out[:cpLen], body[ofdm.FFTSize-cpLen:])
	copy(out[cpLen:], body)
	return out
}
