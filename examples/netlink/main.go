// Netlink demonstrates the MIMONet platform path end to end inside one
// process: the transmit flowgraph ships faded IQ samples through a real
// loopback UDP socket (the host↔front-end sample link) to a receive
// goroutine that decodes and reports each packet.
//
//	go run ./examples/netlink
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/mac"
	"repro/internal/radio"
	"repro/mimonet"
)

const (
	numPackets = 8
	payloadLen = 400
	snrDB      = 22.0
)

func main() {
	log.SetFlags(0)

	rxSock, err := radio.NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer rxSock.Close()

	// Receiver goroutine: UDP → PHY → MAC.
	done := make(chan struct{})
	go receive(rxSock, done)

	// Transmitter: payload → PHY → channel → UDP.
	tx, err := mimonet.NewTransmitter(mimonet.TxConfig{MCS: 9})
	if err != nil {
		log.Fatal(err)
	}
	ch, err := mimonet.NewChannel(mimonet.ChannelConfig{
		NumTX: 2, NumRX: 2,
		Model: mimonet.TGnB, SNRdB: snrDB, Seed: 3,
		TimingOffset: 250, TrailingSilence: 120,
	})
	if err != nil {
		log.Fatal(err)
	}
	sender, err := radio.NewUDPSender(rxSock.Addr().String(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()

	r := rand.New(rand.NewSource(9))
	for i := 0; i < numPackets; i++ {
		payload := make([]byte, payloadLen)
		r.Read(payload)
		frame := &mac.Frame{Seq: uint16(i), Payload: payload}
		psdu, err := frame.Encode()
		if err != nil {
			log.Fatal(err)
		}
		burst, err := tx.Transmit(psdu)
		if err != nil {
			log.Fatal(err)
		}
		faded, err := ch.Apply(burst)
		if err != nil {
			log.Fatal(err)
		}
		if err := sender.WriteBurst(faded); err != nil {
			log.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) //mimonet:wallclock example paces a live loopback link
	}
	<-done
}

func receive(sock *radio.UDPReceiver, done chan<- struct{}) {
	defer close(done)
	rcv, err := mimonet.NewReceiver(mimonet.RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for i := 0; i < numPackets; i++ {
		burst, err := sock.ReadBurst(10 * time.Second)
		if err != nil {
			log.Fatalf("read burst: %v", err)
		}
		res, err := rcv.Receive(burst)
		if err != nil {
			fmt.Printf("packet %d: decode failed: %v\n", i, err)
			continue
		}
		frame, err := mac.Decode(res.PSDU)
		if err != nil {
			fmt.Printf("packet %d: FCS failed (snr %.1f dB)\n", i, res.SNRdB)
			continue
		}
		ok++
		fmt.Printf("packet %d: seq=%d %v snr=%.1fdB len=%d datagrams_lost=%d\n",
			i, frame.Seq, res.MCS, res.SNRdB, len(frame.Payload), sock.Lost)
	}
	fmt.Printf("delivered %d/%d over the UDP IQ link\n", ok, numPackets)
}
