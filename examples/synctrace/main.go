// Synctrace runs the paper's MIMO-extended Van de Beek synchronizer on a
// noisy OFDM burst and prints the log-likelihood trace Λ(θ), showing the
// peak at the true symbol boundary and how combining two receive antennas
// sharpens it.
//
//	go run ./examples/synctrace
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dsp"
	"repro/internal/ofdm"
	"repro/internal/vandebeek"
)

func main() {
	log.SetFlags(0)
	const (
		snrDB      = 3.0
		cfo        = 0.12 // subcarrier spacings
		trueOffset = 35
	)
	r := rand.New(rand.NewSource(11))
	rx := makeBurst(r, 2, trueOffset, cfo, snrDB)

	est, err := vandebeek.New(ofdm.FFTSize, ofdm.CPLen, math.Pow(10, snrDB/10))
	if err != nil {
		log.Fatal(err)
	}
	limit := trueOffset + ofdm.SymbolLen + est.SymbolSpan() - 1

	lambda1, _, err := est.Metric([][]complex128{rx[0][:limit]})
	if err != nil {
		log.Fatal(err)
	}
	lambda2, _, err := est.Metric([][]complex128{rx[0][:limit], rx[1][:limit]})
	if err != nil {
		log.Fatal(err)
	}
	e1, _ := est.Estimate([][]complex128{rx[0][:limit]})
	e2, _ := est.Estimate([][]complex128{rx[0][:limit], rx[1][:limit]})

	fmt.Printf("true boundary at sample %d, CFO %.2f subcarrier spacings, SNR %.0f dB\n\n",
		trueOffset, cfo, snrDB)
	fmt.Println("Λ(θ) traces (x = 1-RX, # = 2-RX combined), 60-char scale:")
	plot(lambda1, lambda2, trueOffset)
	fmt.Printf("\n1-RX estimate: θ=%d, ε=%.4f  (err %d samples, %.4f spacings)\n",
		e1.Offset, e1.CFO, e1.Offset-trueOffset, e1.CFO-cfo)
	fmt.Printf("2-RX estimate: θ=%d, ε=%.4f  (err %d samples, %.4f spacings)\n",
		e2.Offset, e2.CFO, e2.Offset-trueOffset, e2.CFO-cfo)
}

func plot(l1, l2 []float64, mark int) {
	min1, max1 := minMax(l1)
	min2, max2 := minMax(l2)
	for i := 0; i < len(l1); i += 2 {
		c1 := int(59 * (l1[i] - min1) / (max1 - min1 + 1e-12))
		c2 := int(59 * (l2[i] - min2) / (max2 - min2 + 1e-12))
		line := []byte(strings.Repeat(" ", 62))
		line[c1] = 'x'
		line[c2] = '#'
		tag := "  "
		if i <= mark && mark < i+2 {
			tag = "<-- true boundary"
		}
		fmt.Printf("θ=%3d |%s| %s\n", i, string(line), tag)
	}
}

func minMax(x []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range x {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// makeBurst builds nrx streams of back-to-back random OFDM symbols with a
// boundary at offset, plus CFO and AWGN.
func makeBurst(r *rand.Rand, nrx, offset int, cfo, snrDB float64) [][]complex128 {
	mod := ofdm.NewModulator(ofdm.HTToneMap)
	total := offset + 5*ofdm.SymbolLen
	clean := make([]complex128, total)
	sym := make([]complex128, ofdm.SymbolLen)
	data := make([]complex128, 52)
	pos := offset%ofdm.SymbolLen - ofdm.SymbolLen
	for ; pos < total; pos += ofdm.SymbolLen {
		for i := range data {
			data[i] = complex(math.Sqrt2/2*float64(1-2*r.Intn(2)), math.Sqrt2/2*float64(1-2*r.Intn(2)))
		}
		if err := mod.Symbol(sym, data, []complex128{1, 1, 1, -1}); err != nil {
			log.Fatal(err)
		}
		for i, v := range sym {
			if pos+i >= 0 && pos+i < total {
				clean[pos+i] = v
			}
		}
	}
	dsp.Rotate(clean, 0, 2*math.Pi*cfo/float64(ofdm.FFTSize))
	sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
	out := make([][]complex128, nrx)
	for a := range out {
		ang := r.Float64() * 2 * math.Pi
		ph := complex(math.Cos(ang), math.Sin(ang))
		s := make([]complex128, total)
		for i, v := range clean {
			s[i] = v*ph + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		}
		out[a] = s
	}
	return out
}
