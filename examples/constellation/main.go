// Constellation renders ASCII scatter plots of the receiver's equalized
// 16-QAM symbols with pilot phase tracking disabled and enabled, under a
// residual carrier offset — making the paper's phase-tracking feature
// visible: without it the constellation smears into rings, with it the 16
// points stay tight.
//
//	go run ./examples/constellation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/chanest"
	"repro/internal/mimo"
	"repro/internal/modem"
	"repro/internal/ofdm"
	"repro/mimonet"
)

const (
	mcsIdx     = 11 // 2ss 16-QAM 1/2
	payloadLen = 1200
	cfoHz      = 800.0
	snrDB      = 28.0
)

func main() {
	log.SetFlags(0)
	fmt.Printf("MCS%d burst, %g Hz residual CFO, %g dB SNR\n\n", mcsIdx, cfoHz, snrDB)
	for _, tracking := range []bool{false, true} {
		pts := equalizedSymbols(tracking)
		label := "pilot phase tracking OFF"
		if tracking {
			label = "pilot phase tracking ON"
		}
		fmt.Printf("--- %s (%d symbols) ---\n", label, len(pts))
		scatter(pts)
		fmt.Println()
	}
}

// equalizedSymbols runs TX → impaired channel → sync/estimation and returns
// the per-subcarrier equalized data symbols of stream 0 across the packet.
func equalizedSymbols(tracking bool) []complex128 {
	r := rand.New(rand.NewSource(7))
	tx, err := mimonet.NewTransmitter(mimonet.TxConfig{MCS: mcsIdx, ScramblerSeed: 0x2F})
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, payloadLen)
	r.Read(payload)
	burst, err := tx.Transmit(payload)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := mimonet.NewChannel(mimonet.ChannelConfig{
		NumTX: 2, NumRX: 2, Model: mimonet.Identity, SNRdB: snrDB, Seed: 3,
		CFOHz: cfoHz, SampleRate: ofdm.SampleRate,
		TimingOffset: 260, TrailingSilence: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	rxs, err := ch.Apply(burst)
	if err != nil {
		log.Fatal(err)
	}
	// Reimplement the front half of the receiver, stopping at equalized
	// symbols (the public Receive goes all the way to bits).
	return frontEnd(rxs, tracking)
}

// frontEnd synchronizes, estimates the channel and equalizes every data
// symbol, optionally applying pilot CPE correction, returning stream 0's
// equalized points.
func frontEnd(rxs [][]complex128, tracking bool) []complex128 {
	rcv, err := mimonet.NewReceiver(mimonet.RxConfig{NumAntennas: 2, Detector: "zf",
		DisablePhaseTracking: !tracking})
	if err != nil {
		log.Fatal(err)
	}
	// Decode once to drive synchronization on a copy, recording timing.
	cp := make([][]complex128, len(rxs))
	for a := range rxs {
		cp[a] = append([]complex128(nil), rxs[a]...)
	}
	res, err := rcv.Receive(cp)
	if err != nil {
		log.Fatalf("receive: %v", err)
	}
	// Re-run the per-symbol equalization on the CFO-corrected copy using
	// the receiver's own sync outputs: re-estimate from the HT-LTFs.
	mcs, err := mimonet.LookupMCS(res.HTSIG.MCS)
	if err != nil {
		log.Fatal(err)
	}
	base := res.Timing
	dem := ofdm.NewDemodulator(ofdm.HTToneMap)
	nltf := 2
	spectra := make([][][]complex128, 2)
	const bo = 3
	for a := range cp {
		spectra[a] = make([][]complex128, nltf)
		for n := 0; n < nltf; n++ {
			off := base + 640 + n*80 + ofdm.CPLen - bo
			spec := make([]complex128, ofdm.FFTSize)
			if err := dem.Bins(spec, cp[a][off:off+ofdm.FFTSize]); err != nil {
				log.Fatal(err)
			}
			spectra[a][n] = spec
		}
	}
	est, err := chanest.EstimateHT(spectra, mcs.NSS)
	if err != nil {
		log.Fatal(err)
	}
	det := mimo.NewZF(modem.QAM16, mcs.NSS)
	if err := det.Prepare(est.DataMatrices(), res.NoiseVar); err != nil {
		log.Fatal(err)
	}
	tracker := chanest.NewPhaseTracker(est)

	nSym := mcs.NumSymbols(res.HTSIG.Length)
	dataStart := base + 640 + nltf*80
	var out []complex128
	eq := make([]complex128, mcs.NSS)
	for n := 0; n < nSym; n++ {
		off := dataStart + n*ofdm.SymbolLen + ofdm.CPLen - bo
		dataTones := make([][]complex128, 2)
		pilotTones := make([][]complex128, 2)
		for a := range cp {
			var err error
			dataTones[a], pilotTones[a], err = dem.Symbol(cp[a][off:off+ofdm.FFTSize], nil, nil)
			if err != nil {
				log.Fatal(err)
			}
		}
		if tracking {
			txPilots := make([][]complex128, mcs.NSS)
			for iss := 0; iss < mcs.NSS; iss++ {
				p, err := ofdm.HTPilots(mcs.NSS, iss, n, 3)
				if err != nil {
					log.Fatal(err)
				}
				txPilots[iss] = p
			}
			if cpe, err := tracker.Estimate(pilotTones, txPilots); err == nil {
				chanest.Correct(dataTones, cpe)
			}
		}
		y := make([]complex128, 2)
		for k := 0; k < ofdm.HTToneMap.NumData(); k++ {
			y[0], y[1] = dataTones[0][k], dataTones[1][k]
			if err := det.Equalize(eq, k, y); err != nil {
				log.Fatal(err)
			}
			out = append(out, eq[0])
		}
	}
	return out
}

// scatter draws a 41x21 density plot of the complex points.
func scatter(pts []complex128) {
	const (
		w, h  = 41, 21
		scale = 1.5 // axis range ±scale
	)
	grid := make([][]int, h)
	for i := range grid {
		grid[i] = make([]int, w)
	}
	for _, p := range pts {
		x := int((real(p)/scale + 1) / 2 * float64(w-1))
		y := int((1 - imag(p)/scale) / 2 * float64(h-1))
		if x >= 0 && x < w && y >= 0 && y < h {
			grid[y][x]++
		}
	}
	shades := " .:+*#@"
	for y := 0; y < h; y++ {
		var b strings.Builder
		for x := 0; x < w; x++ {
			c := grid[y][x]
			idx := 0
			for c > 0 && idx < len(shades)-1 {
				c /= 4
				idx++
			}
			b.WriteByte(shades[idx])
		}
		fmt.Printf("|%s|\n", b.String())
	}
}
