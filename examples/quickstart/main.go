// Quickstart: move a frame across a 2x2 spatially multiplexed link over a
// TGn-B indoor channel and print the receiver's diagnostics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/mimonet"
)

func main() {
	log.SetFlags(0)
	// MCS 11 = 2 spatial streams, 16-QAM, rate 1/2 → 52 Mbit/s.
	link, err := mimonet.NewLink(mimonet.LinkConfig{
		MCS:      11,
		Detector: "mmse",
		Channel: mimonet.ChannelConfig{
			Model: mimonet.TGnB,
			SNRdB: 25,
			Seed:  42,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	payload := []byte("hello from MIMONet: two streams, one channel")
	report, err := link.Send(payload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mcs:        %v\n", link.MCS())
	fmt.Printf("delivered:  %v\n", report.OK)
	fmt.Printf("payload:    %q\n", report.Received)
	fmt.Printf("snr est:    %.1f dB\n", report.SNRdB)
	fmt.Printf("cfo est:    %.2g rad/sample\n", report.CFO)
	fmt.Printf("bit errors: %d / %d\n", report.BitErrors, report.PayloadBits)
}
