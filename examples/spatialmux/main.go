// Spatialmux demonstrates the paper's motivating claim: spatial
// multiplexing multiplies throughput without extra bandwidth. It runs the
// same payload stream over one- and two-stream MCS at several SNRs and
// prints the delivered goodput of each.
//
//	go run ./examples/spatialmux
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/mimonet"
)

func main() {
	log.SetFlags(0)
	const (
		packets    = 60
		payloadLen = 1000
	)
	fmt.Printf("%8s  %22s  %22s  %7s\n", "snr(dB)", "1 stream (MCS4, 39Mb/s)", "2 streams (MCS12, 78Mb/s)", "gain")
	for _, snr := range []float64{8, 14, 20, 26, 32} {
		g1 := goodput(4, snr, packets, payloadLen)
		g2 := goodput(12, snr, packets, payloadLen)
		gain := 0.0
		if g1 > 0 {
			gain = g2 / g1
		}
		fmt.Printf("%8.0f  %18.1f Mb/s  %18.1f Mb/s  %6.2fx\n", snr, g1, g2, gain)
	}
	fmt.Println("\nsame bandwidth, same constellation and code rate — the second")
	fmt.Println("antenna pair carries the extra bits once SNR supports separation.")
}

// goodput returns delivered Mbit/s: PHY rate × (1 − PER).
func goodput(mcs int, snrDB float64, packets, payloadLen int) float64 {
	link, err := mimonet.NewLink(mimonet.LinkConfig{
		MCS:      mcs,
		Detector: "mmse",
		Channel: mimonet.ChannelConfig{
			Model: mimonet.TGnB,
			SNRdB: snrDB,
			Seed:  int64(mcs)*1000 + int64(snrDB),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	payload := make([]byte, payloadLen)
	ok := 0
	for p := 0; p < packets; p++ {
		r.Read(payload)
		rep, err := link.Send(payload)
		if err != nil {
			log.Fatal(err)
		}
		if rep.OK {
			ok++
		}
	}
	m := link.MCS()
	return m.DataRateMbps() * float64(ok) / float64(packets)
}
