package repro

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/phy"
	"repro/internal/radio"
)

// TestFlightRecorderLinkPostMortem reproduces the E11 failure workflow end
// to end: a TX process streams packets over the UDP radio link, injected
// datagram loss erases part of one packet's data region, the receive side's
// CRC failure trips the flight recorder, and merging the two ends' dumps
// yields a single timeline for the lost packet — keyed by the TX-assigned
// packet ID the framing header carried across the process boundary —
// holding the sync-window IQ, the per-subcarrier EVM, and the channel
// condition numbers a post-mortem needs.
func TestFlightRecorderLinkPostMortem(t *testing.T) {
	dir := t.TempDir()
	const lossyPacket = 2

	// TX side: transmitter, simulated channel, UDP sender with an
	// interceptor that drops a run of data-region datagrams of one packet
	// (the preamble and the end-of-burst frame survive, so the receiver
	// still syncs and the burst still terminates — the erasure lands on
	// coded data, which is exactly a CRC failure, not a sync loss).
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 9, ScramblerSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.Identity,
		SNRdB: 30, Seed: 11, SampleRate: 20e6, TimingOffset: 280, TrailingSilence: 100})
	if err != nil {
		t.Fatal(err)
	}
	urx, err := radio.NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer urx.Close()
	utx, err := radio.NewUDPSender(urx.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer utx.Close()
	dgramInBurst := 0
	utx.Intercept = func(d []byte) [][]byte {
		h, err := radio.DecodeHeader(d)
		if err != nil {
			t.Fatalf("interceptor saw malformed frame: %v", err)
		}
		i := dgramInBurst
		dgramInBurst++
		if h.Flags&radio.FlagEndOfBurst != 0 {
			dgramInBurst = 0
		}
		if h.PacketID == lossyPacket && i >= 8 && i < 12 {
			return nil // injected loss: the receiver zero-fills the gap
		}
		return [][]byte{d}
	}
	txRec := flight.New(flight.Config{Capacity: 8, Dir: dir, Node: "tx"})

	// RX side: instrumented receiver with an armed flight recorder.
	tracer := obs.NewTracer(8, nil)
	tracer.SetRole("rx")
	rxObs := phy.NewRxObs(nil, tracer)
	rxRec := flight.New(flight.Config{Capacity: 8, Dir: dir, Node: "rx", OnFailure: true})
	rxObs.SetFlight(rxRec)
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	rcv.SetObs(rxObs)

	r := rand.New(rand.NewSource(31))
	verdicts := make(map[uint64]bool)
	for i := 0; i < 3; i++ {
		packetID := uint64(i) + 1
		payload := make([]byte, 400)
		r.Read(payload)
		frame := &mac.Frame{Seq: uint16(i), Payload: payload}
		psdu, err := frame.Encode()
		if err != nil {
			t.Fatal(err)
		}
		burst, err := tx.Transmit(psdu)
		if err != nil {
			t.Fatal(err)
		}
		faded, err := ch.Apply(burst)
		if err != nil {
			t.Fatal(err)
		}
		werr := make(chan error, 1)
		go func() { werr <- utx.WriteBurstID(packetID, faded) }()
		rx, rerr := urx.ReadBurst(5 * time.Second)
		if err := <-werr; err != nil {
			t.Fatal(err)
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
		txRec.Record(flight.Evidence{PacketID: packetID, Verdict: flight.VerdictSent,
			MCS: 9, Note: "integration tx record"})

		rcv.SetPacketID(urx.LastPacketID())
		res, derr := rcv.Receive(rx)
		if derr != nil {
			t.Fatalf("packet %d: PHY decode failed (%v) — loss was meant to hit only the data region", packetID, derr)
		}
		rxObs.ActiveTrace().Begin(obs.StageCRC)
		_, merr := mac.Decode(res.PSDU)
		rxObs.PacketResult(merr == nil, len(res.PSDU))
		verdicts[urx.LastPacketID()] = merr == nil
	}

	// The injected loss must have produced exactly one CRC failure, on the
	// propagated (not locally guessed) packet ID.
	if verdicts[1] != true || verdicts[lossyPacket] != false || verdicts[3] != true {
		t.Fatalf("verdicts by propagated packet ID = %v, want only packet %d failed", verdicts, lossyPacket)
	}

	// The CRC failure must have tripped the recorder on its own: a trigger
	// artifact exists without any explicit Dump call on the rx recorder.
	trigger, err := filepath.Glob(filepath.Join(dir, "flight-rx-*-crc_fail.json"))
	if err != nil || len(trigger) != 1 {
		t.Fatalf("crc_fail trigger dumps = %v (err %v), want exactly 1", trigger, err)
	}
	txDumpFile, err := txRec.Dump("end_of_run")
	if err != nil {
		t.Fatal(err)
	}

	rxDump, err := flight.Load(trigger[0])
	if err != nil {
		t.Fatal(err)
	}
	txDump, err := flight.Load(txDumpFile)
	if err != nil {
		t.Fatal(err)
	}
	timelines := flight.Merge(txDump, rxDump)

	var lost *flight.Timeline
	for i := range timelines {
		if timelines[i].PacketID == lossyPacket {
			lost = &timelines[i]
		}
	}
	if lost == nil {
		t.Fatalf("merged timelines %v lack packet %d", timelines, lossyPacket)
	}
	if got := lost.Verdict(); got != flight.VerdictCRCFail {
		t.Fatalf("timeline verdict = %q, want %q", got, flight.VerdictCRCFail)
	}
	if len(lost.Entries) != 2 || lost.Entries[0].Node != "tx" || lost.Entries[1].Node != "rx" {
		t.Fatalf("timeline entries = %+v, want tx then rx", lost.Entries)
	}

	// The rx evidence is a self-contained post-mortem: IQ around the sync
	// point, per-subcarrier channel conditioning and EVM, and the stage
	// trace.
	ev := lost.Entries[1]
	if len(ev.SyncIQ) != 2 || len(ev.SyncIQ[0]) == 0 {
		t.Errorf("sync IQ window missing: %d chains", len(ev.SyncIQ))
	}
	if len(ev.ChanEst) != 52 {
		t.Errorf("channel estimate carries %d tones, want 52", len(ev.ChanEst))
	}
	for _, ce := range ev.ChanEst {
		if ce.CondDB < -1 || ce.CondDB > 150 {
			t.Errorf("tone %d condition = %g dB out of range", ce.Subcarrier, ce.CondDB)
		}
	}
	if len(ev.EVM) != 52 {
		t.Errorf("EVM table carries %d bins, want 52", len(ev.EVM))
	}
	if len(ev.Trace.Spans) == 0 || ev.Trace.OK {
		t.Errorf("embedded trace = %+v, want finished spans with ok=false", ev.Trace)
	}
	if ev.SoftBits.Count == 0 {
		t.Errorf("soft-bit stats empty: %+v", ev.SoftBits)
	}
}
