// Package mimonet is the public API of the MIMONet MIMO-OFDM transceiver —
// a Go reproduction of "MIMO-OFDM spatial multiplexing technique
// implementation for GNU radio" (Martelli, Kocian, Santi, Gardellin,
// ACM SRIF 2014).
//
// The package exposes the three things a downstream user needs:
//
//   - Transmitter / Receiver: the IEEE 802.11n HT-mixed-format PHY with
//     spatial multiplexing (1-4 streams), concatenated FEC, pilot-based
//     phase tracking and the MIMO-extended Van de Beek synchronization.
//   - Channel: the simulated radio path (AWGN, Rayleigh, TGn multipath,
//     SDR front-end impairments) standing in for the paper's USRP2 testbed.
//   - Link: a ready-made TX→channel→RX harness with per-packet reports
//     (FCS outcome, bit errors, SNR estimate) for experiments.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture.
package mimonet

import (
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/ratectl"
	"repro/internal/sounding"
)

// MCS describes a modulation and coding scheme; see LookupMCS.
type MCS = phy.MCS

// LookupMCS returns the 20 MHz long-GI HT MCS for index 0-31 (N_SS =
// index/8 + 1).
func LookupMCS(index int) (MCS, error) { return phy.Lookup(index) }

// TxConfig configures a Transmitter.
type TxConfig = phy.TxConfig

// Transmitter builds HT-mixed-format PPDUs from PSDUs.
type Transmitter = phy.Transmitter

// NewTransmitter returns a transmitter for the configuration.
func NewTransmitter(cfg TxConfig) (*Transmitter, error) { return phy.NewTransmitter(cfg) }

// RxConfig configures a Receiver.
type RxConfig = phy.RxConfig

// RxResult reports one decoded packet.
type RxResult = phy.RxResult

// Receiver synchronizes to and decodes PPDUs from raw baseband streams.
type Receiver = phy.Receiver

// NewReceiver returns a receiver for the configuration.
func NewReceiver(cfg RxConfig) (*Receiver, error) { return phy.NewReceiver(cfg) }

// ChannelModel selects a propagation model for the simulated radio path.
type ChannelModel = channel.Model

// Propagation models (see internal/channel for the TGn delay spreads).
const (
	Identity     = channel.Identity
	FlatRayleigh = channel.FlatRayleigh
	TGnA         = channel.TGnA
	TGnB         = channel.TGnB
	TGnC         = channel.TGnC
	TGnD         = channel.TGnD
	TGnE         = channel.TGnE
	TGnF         = channel.TGnF
)

// ChannelConfig configures the simulated radio path.
type ChannelConfig = channel.Config

// Channel applies fading, multipath, front-end impairments and noise.
type Channel = channel.Channel

// NewChannel returns a channel for the configuration.
func NewChannel(cfg ChannelConfig) (*Channel, error) { return channel.New(cfg) }

// LinkConfig configures a Link.
type LinkConfig = core.LinkConfig

// TransferReport describes one frame's journey across a Link.
type TransferReport = core.TransferReport

// Link couples a transmitter, a channel and a receiver into a single-hop
// MIMONet link that moves MAC frames and reports diagnostics.
type Link = core.Link

// NewLink returns a link for the configuration.
func NewLink(cfg LinkConfig) (*Link, error) { return core.NewLink(cfg) }

// SoundingReport carries the channel-state metrics (capacity, condition
// number, recommended stream count) a Receiver attaches to each RxResult.
type SoundingReport = sounding.Report

// RateThreshold pairs an MCS with its minimum operating SNR for the
// link-adaptation selector.
type RateThreshold = ratectl.Threshold

// RateSelector adapts the MCS to SNR reports with hysteresis.
type RateSelector = ratectl.Selector

// NewRateSelector returns a selector over the given ladder;
// DefaultRateThresholds supplies a calibrated one.
func NewRateSelector(ladder []RateThreshold, hysteresisDB float64) (*RateSelector, error) {
	return ratectl.NewSelector(ladder, hysteresisDB)
}

// DefaultRateThresholds returns the MCS ladder calibrated from the E5
// packet-error sweeps.
func DefaultRateThresholds() []RateThreshold { return ratectl.DefaultThresholds() }
