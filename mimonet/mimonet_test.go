package mimonet_test

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"testing"

	"repro/mimonet"
)

// TestPublicAPISurface drives the whole public facade the way a downstream
// user would: MCS lookup, link construction, transfer, and the raw
// transmitter/channel/receiver path.
func TestPublicAPISurface(t *testing.T) {
	m, err := mimonet.LookupMCS(11)
	if err != nil || m.NSS != 2 {
		t.Fatalf("LookupMCS: %+v, %v", m, err)
	}

	link, err := mimonet.NewLink(mimonet.LinkConfig{
		MCS:      11,
		Detector: "mmse",
		Channel:  mimonet.ChannelConfig{Model: mimonet.TGnB, SNRdB: 28, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("public API round trip")
	rep, err := link.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || !bytes.Equal(rep.Received, payload) {
		t.Fatalf("link transfer failed: %+v", rep)
	}

	// Raw path: Transmitter → Channel → Receiver.
	tx, err := mimonet.NewTransmitter(mimonet.TxConfig{MCS: 9})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	psdu := make([]byte, 200)
	r.Read(psdu)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := mimonet.NewChannel(mimonet.ChannelConfig{
		NumTX: 2, NumRX: 2, Model: mimonet.FlatRayleigh, SNRdB: 35, Seed: 10,
		TimingOffset: 220, TrailingSilence: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := ch.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := mimonet.NewReceiver(mimonet.RxConfig{NumAntennas: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rcv.Receive(rxs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("raw-path PSDU mismatch")
	}
}

// ExampleNewLink demonstrates the one-call link harness.
func ExampleNewLink() {
	link, err := mimonet.NewLink(mimonet.LinkConfig{
		MCS:      11, // 2 streams, 16-QAM, rate 1/2 → 52 Mbit/s
		Detector: "mmse",
		Channel: mimonet.ChannelConfig{
			Model: mimonet.TGnB,
			SNRdB: 30,
			Seed:  42,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := link.Send([]byte("hello"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.OK, string(report.Received))
	// Output: true hello
}
