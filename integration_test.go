package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/mimonet"
)

// TestIntegrationMatrix sweeps the public API across the configuration
// space a downstream user will hit: every stream count, every detector
// compatible with it, several channel models, both guard intervals —
// asserting every combination delivers frames at a comfortable SNR.
func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep skipped in -short mode")
	}
	type combo struct {
		mcs      int
		detector string
		model    mimonet.ChannelModel
		shortGI  bool
	}
	var combos []combo
	for _, mcs := range []int{0, 7, 9, 12, 16, 25} { // 1-3 streams, all schemes
		for _, det := range []string{"zf", "mmse", "sic", "ml"} {
			nss := mcs/8 + 1
			scheme, _ := mimonet.LookupMCS(mcs)
			// ML joint search caps at 16 bits: skip oversized combos.
			if det == "ml" && nss*scheme.Scheme.BitsPerSymbol() > 16 {
				continue
			}
			for _, model := range []mimonet.ChannelModel{mimonet.Identity, mimonet.FlatRayleigh, mimonet.TGnB} {
				combos = append(combos, combo{mcs, det, model, false})
			}
		}
	}
	// Short-GI spot checks.
	combos = append(combos,
		combo{9, "mmse", mimonet.TGnB, true},
		combo{12, "zf", mimonet.Identity, true},
	)

	r := rand.New(rand.NewSource(99))
	for i, c := range combos {
		c := c
		name := fmt.Sprintf("mcs%d_%s_%v_sgi%v", c.mcs, c.detector, c.model, c.shortGI)
		t.Run(name, func(t *testing.T) {
			nss := c.mcs/8 + 1
			nrx := nss + 1 // one diversity antenna of headroom
			if nrx > 4 {
				nrx = 4
			}
			link, err := mimonet.NewLink(mimonet.LinkConfig{
				MCS:           c.mcs,
				Detector:      c.detector,
				ShortGI:       c.shortGI,
				NumRXAntennas: nrx,
				Channel: mimonet.ChannelConfig{
					Model: c.model,
					SNRdB: 38,
					Seed:  int64(1000 + i),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 300)
			r.Read(payload)
			ok := 0
			const packets = 3
			for p := 0; p < packets; p++ {
				rep, err := link.Send(payload)
				if err != nil {
					t.Fatal(err)
				}
				if rep.OK && bytes.Equal(rep.Received, payload) {
					ok++
				}
			}
			// At 38 dB with a spare antenna, allow at most one deep-fade
			// loss out of three on fading models; none on identity.
			min := packets
			if c.model != mimonet.Identity {
				min = packets - 1
			}
			if ok < min {
				t.Errorf("delivered %d/%d", ok, packets)
			}
		})
	}
}

// TestIntegrationSoundingAndRateControl drives the CSI and rate-control
// surfaces of the public API together: receive a packet, read the sounding
// report, feed the SNR estimate to the rate selector.
func TestIntegrationSoundingAndRateControl(t *testing.T) {
	sel, err := mimonet.NewRateSelector(mimonet.DefaultRateThresholds(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := mimonet.NewTransmitter(mimonet.TxConfig{MCS: sel.Current()})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := mimonet.NewChannel(mimonet.ChannelConfig{
		NumTX: tx.NumChains(), NumRX: 2, Model: mimonet.FlatRayleigh,
		SNRdB: 28, Seed: 7, TimingOffset: 220, TrailingSilence: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := mimonet.NewReceiver(mimonet.RxConfig{NumAntennas: 2})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.Transmit(make([]byte, 200))
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := ch.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rcv.Receive(rxs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sounding == nil {
		t.Fatal("no sounding report on RxResult")
	}
	next := sel.Observe(res.SNRdB)
	if _, err := mimonet.LookupMCS(next); err != nil {
		t.Errorf("selector returned invalid MCS %d", next)
	}
	if next == 0 && res.SNRdB > 20 {
		t.Errorf("selector stuck at MCS 0 despite %g dB", res.SNRdB)
	}
}
