GO ?= go

.PHONY: all build test race lint fmt fmt-check bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Custom static analyzers (internal/analysis/*); exits non-zero on findings.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mimonet-lint ./...

fmt:
	gofmt -w .

# CI gate: fail if any file is unformatted.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
