GO ?= go

.PHONY: all build test race lint lint-json lint-sarif fmt fmt-check bench bench-all bench-compare soak mu-soak clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Custom static analyzers (internal/analysis/*); exits non-zero on any
# finding not absorbed by the checked-in baseline.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mimonet-lint -baseline lint/baseline.json ./...

# Machine-readable lint reports (same gate, JSON / SARIF payloads).
lint-json:
	$(GO) run ./cmd/mimonet-lint -json -baseline lint/baseline.json ./... > lint-findings.json; \
		status=$$?; cat lint-findings.json; exit $$status

lint-sarif:
	$(GO) run ./cmd/mimonet-lint -sarif -baseline lint/baseline.json ./... > mimonet-lint.sarif

fmt:
	gofmt -w .

# CI gate: fail if any file is unformatted.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Tracked benchmark baseline: the root experiment benches (Quick-mode
# Monte-Carlo settings) run three times each — benchjson keeps the fastest
# repetition per benchmark, the standard low-variance estimator, so a single
# load spike on a shared runner cannot masquerade as a regression — with the
# text stream shown and also converted to JSON (name -> ns/op, B/op,
# allocs/op, custom metrics) by cmd/benchjson. Regenerate after performance
# work and commit the BENCH_pr8.json diff; BENCH_pr3.json stays frozen as
# the pre-batching reference the compare gate measures against.
bench:
	$(GO) test -bench . -benchmem -count 3 -run '^$$' . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_pr8.json
	@echo "wrote BENCH_pr8.json"

# The real-time sample-rate floor the batched receive chain must sustain
# (aggregate complex samples/sec across antennas in BenchmarkRealtime).
REALTIME_FLOOR = 20000000

# Rerun the tracked benches and diff against the committed pre-batching
# baseline; exits non-zero past a 15% ns/op regression on any benchmark or
# when BenchmarkRealtime falls below the samples/sec floor.
bench-compare:
	$(GO) test -bench . -benchmem -count 3 -run '^$$' . | $(GO) run ./cmd/benchjson > /tmp/bench-new.json
	$(GO) run ./cmd/benchjson -compare \
		-floor BenchmarkRealtime=samples/sec:$(REALTIME_FLOOR) \
		BENCH_pr3.json /tmp/bench-new.json

# Session-gateway chaos soak (experiment E23): 240 concurrent sessions
# through the fault-scenario rotation. Regenerate after session/gateway work
# and commit the SOAK_pr6.json diff; exits non-zero if any session ends
# outside the defined terminal states or resources fail to return to
# baseline. CI runs the same engine at reduced scale under -race.
soak:
	$(GO) run ./cmd/mimonet-gw -soak -sessions 240 -bytes 32768 -seed 20260808 -o SOAK_pr6.json

# Multi-user AP soak (experiment E25): 120 stations across four cells
# through the static/fading/churn scenario rotation, precoding from cached
# quantized CSI. Regenerate after apmac/mumimo/sounding work and commit the
# SOAK_pr9.json diff; exits non-zero if multi-user throughput fails to beat
# the single-user TDMA baseline. CI runs the same engine at reduced scale
# under -race.
mu-soak:
	$(GO) run ./cmd/mimonet-ap -soak -seed 20260808 -o SOAK_pr9.json

# Every benchmark in the tree (kernel micro-benches included), untracked.
bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
