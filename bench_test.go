// Package repro's root benchmarks regenerate every experiment table (one
// benchmark per table/figure, E1-E12; see DESIGN.md for the mapping onto
// the paper) plus end-to-end throughput benches for the SDR-feasibility
// numbers. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks execute each experiment at reduced (Quick) Monte-Carlo
// settings so `go test -bench` terminates promptly; use cmd/mimonet-sim for
// full-resolution tables.
package repro

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/sim"
)

func benchOptions(i int) sim.Options {
	return sim.Options{Seed: int64(1 + i), Packets: 20, PayloadLen: 300, Quick: true}
}

// benchExperiment runs one experiment table per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := sim.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := runner(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := table.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkerSweep runs one experiment at a fixed worker count so the
// serial/parallel sub-benchmarks expose the Monte-Carlo engine's scaling
// (and its per-worker allocation overhead) side by side. The table is
// bit-identical at every count, so the pair measures pure engine cost.
func benchWorkerSweep(b *testing.B, id string) {
	b.Helper()
	runner, err := sim.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, runtime.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts = counts[:1] // single-core box: the pair would be duplicates
	}
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt := benchOptions(i)
				opt.Workers = workers
				table, err := runner(opt)
				if err != nil {
					b.Fatal(err)
				}
				if err := table.Render(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE1UncodedBER(b *testing.B)        { benchExperiment(b, "e1") }
func BenchmarkE2FECGain(b *testing.B)           { benchExperiment(b, "e2") }
func BenchmarkE3Detectors(b *testing.B)         { benchExperiment(b, "e3") }
func BenchmarkE4Throughput(b *testing.B)        { benchExperiment(b, "e4") }
func BenchmarkE5PERvsSNR(b *testing.B)          { benchExperiment(b, "e5") }
func BenchmarkE6Synchronization(b *testing.B)   { benchExperiment(b, "e6") }
func BenchmarkE7PhaseTracking(b *testing.B)     { benchExperiment(b, "e7") }
func BenchmarkE8ChannelEstimation(b *testing.B) { benchExperiment(b, "e8") }
func BenchmarkE9SNREstimation(b *testing.B)     { benchExperiment(b, "e9") }
func BenchmarkE10PacketDetection(b *testing.B)  { benchExperiment(b, "e10") }
func BenchmarkE11NetworkedLink(b *testing.B)    { benchExperiment(b, "e11") }
func BenchmarkE12Pipeline(b *testing.B)         { benchExperiment(b, "e12") }

// BenchmarkTXChain measures raw transmit-chain throughput per MCS family —
// the numbers behind E12's feasibility row, at testing.B resolution.
func BenchmarkTXChain(b *testing.B) {
	for _, mcs := range []int{0, 7, 15, 31} {
		mcs := mcs
		b.Run(fmt.Sprintf("mcs%d", mcs), func(b *testing.B) {
			tx, err := phy.NewTransmitter(phy.TxConfig{MCS: mcs})
			if err != nil {
				b.Fatal(err)
			}
			psdu := make([]byte, 1500)
			samples := phy.BurstLen(tx.MCS(), len(psdu))
			b.SetBytes(int64(samples * 16))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tx.Transmit(psdu); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRXChain measures full receive-chain throughput (sync + channel
// estimation + detection + Viterbi) per detector. Throughput is reported as
// samples/sec — aggregate complex baseband samples consumed across all
// receive antennas per wall-clock second, the unit an SDR front end is
// specified in — rather than the misleading struct-bytes MB/s figure.
func BenchmarkRXChain(b *testing.B) {
	for _, det := range []string{"zf", "mmse", "ml"} {
		det := det
		b.Run(det, func(b *testing.B) {
			mcs := 9 // 2ss QPSK keeps ML tractable
			tx, err := phy.NewTransmitter(phy.TxConfig{MCS: mcs})
			if err != nil {
				b.Fatal(err)
			}
			psdu := make([]byte, 1500)
			burst, err := tx.Transmit(psdu)
			if err != nil {
				b.Fatal(err)
			}
			ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2,
				Model: channel.Identity, SNRdB: 30, Seed: 1,
				TimingOffset: 100, TrailingSilence: 50})
			if err != nil {
				b.Fatal(err)
			}
			rxs, err := ch.Apply(burst)
			if err != nil {
				b.Fatal(err)
			}
			rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: det})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cp := make([][]complex128, len(rxs))
				for a := range rxs {
					cp[a] = append([]complex128(nil), rxs[a]...)
				}
				if _, err := rcv.Receive(cp); err != nil {
					b.Fatal(err)
				}
			}
			samples := float64(len(rxs[0]) * len(rxs) * b.N)
			b.ReportMetric(samples/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// BenchmarkRealtime is the 20 Msps real-time gate: a 4-antenna receiver fed
// MCS0 packets through a TGn-B multipath channel, measured in aggregate
// complex samples consumed per wall-clock second across all antennas. A
// 20 MHz 802.11n front end delivers 20 Msamples/s per antenna; the secondary
// realtime metric is the fraction of one antenna-stream's real-time budget
// the full chain sustains (aggregate rate ÷ 20 Msps), > 1.0 meaning the
// receiver keeps up with a live stream on this core count. The per-iteration
// burst copy is part of the measured cost, as in any real pipeline handoff:
// CFO correction rotates the buffer in place.
func BenchmarkRealtime(b *testing.B) {
	const mcs = 0 // BPSK 1/2, the rate a marginal link actually runs at
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: mcs})
	if err != nil {
		b.Fatal(err)
	}
	psdu := make([]byte, 1500)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := channel.New(channel.Config{NumTX: 1, NumRX: 4,
		Model: channel.TGnB, SNRdB: 30, Seed: 3,
		TimingOffset: 100, TrailingSilence: 50})
	if err != nil {
		b.Fatal(err)
	}
	rxs, err := ch.Apply(burst)
	if err != nil {
		b.Fatal(err)
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 4, Detector: "mmse"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cp := make([][]complex128, len(rxs))
		for a := range rxs {
			cp[a] = append([]complex128(nil), rxs[a]...)
		}
		if _, err := rcv.Receive(cp); err != nil {
			b.Fatal(err)
		}
	}
	rate := float64(len(rxs[0])*len(rxs)*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(rate, "samples/sec")
	b.ReportMetric(rate/20e6, "realtime")
}

// BenchmarkE1Workers and BenchmarkE5Workers track the parallel engine: E1 is
// the lightest sharded sweep (per-shard modem scratch dominates), E5 the
// heaviest (full TX→channel→RX link per packet).
func BenchmarkE1Workers(b *testing.B) { benchWorkerSweep(b, "e1") }
func BenchmarkE5Workers(b *testing.B) { benchWorkerSweep(b, "e5") }

func BenchmarkE13STBCvsSM(b *testing.B) { benchExperiment(b, "e13") }

func BenchmarkE14LinkAdaptation(b *testing.B) { benchExperiment(b, "e14") }

func BenchmarkE15TransmitSpectrum(b *testing.B) { benchExperiment(b, "e15") }

func BenchmarkE16Aggregation(b *testing.B) { benchExperiment(b, "e16") }

func BenchmarkE17GuardInterval(b *testing.B) { benchExperiment(b, "e17") }

func BenchmarkE18Mobility(b *testing.B) { benchExperiment(b, "e18") }

func BenchmarkE19ReliableDelivery(b *testing.B) { benchExperiment(b, "e19") }

func BenchmarkE20RankAdaptation(b *testing.B) { benchExperiment(b, "e20") }

func BenchmarkE21SyncModes(b *testing.B) { benchExperiment(b, "e21") }
