// Deliberately dependency-free: the DSP/PHY stack is pure stdlib, and the
// static-analysis suite (internal/analysis, cmd/mimonet-lint) is built on
// go/ast + go/types rather than golang.org/x/tools so the lint gate runs in
// offline build environments. Keep it that way — new requirements here need
// a strong reason.
module repro

go 1.22
