// Command mimonet-rx listens for IQ sample bursts over UDP (from a
// mimonet-tx process), runs the full MIMONet receiver on each, and prints a
// per-packet report: sync state, estimated SNR and CFO, MCS, and FCS
// outcome.
//
// Usage:
//
//	mimonet-rx -listen 127.0.0.1:9750 -antennas 2 -count 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/radio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mimonet-rx: ")
	var (
		listen   = flag.String("listen", "127.0.0.1:9750", "UDP listen address")
		antennas = flag.Int("antennas", 2, "receive antenna count")
		detector = flag.String("detector", "mmse", "MIMO detector: zf, mmse, sic, ml")
		count    = flag.Int("count", 0, "stop after this many bursts (0 = run forever)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-burst receive timeout")
		file     = flag.String("file", "", "replay IQ bursts from this recording instead of listening on UDP")
	)
	flag.Parse()

	var read func() ([][]complex128, uint64, error)
	var rxSock *radio.UDPReceiver
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sr := radio.NewStreamReader(f)
		read = func() ([][]complex128, uint64, error) {
			b, err := sr.ReadBurst()
			return b, 0, err
		}
		fmt.Printf("replaying from %s\n", *file)
	} else {
		sock, err := radio.NewUDPReceiver(*listen)
		if err != nil {
			log.Fatal(err)
		}
		defer sock.Close()
		rxSock = sock
		read = func() ([][]complex128, uint64, error) {
			b, err := sock.ReadBurst(*timeout)
			return b, sock.Lost, err
		}
		fmt.Printf("listening on %s (%d antennas, %s detector)\n", sock.Addr(), *antennas, *detector)
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: *antennas, Detector: *detector})
	if err != nil {
		log.Fatal(err)
	}
	okCount, errCount := 0, 0
	var lost uint64
	for i := 0; *count == 0 || i < *count; i++ {
		burst, nLost, err := read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A timed-out or malformed burst is an operational event on a
			// lossy link, not a reason to die.
			if errors.Is(err, os.ErrDeadlineExceeded) {
				log.Printf("burst %d: receive timeout; still listening", i)
				continue
			}
			log.Printf("burst %d: read failed (%v); skipping", i, err)
			errCount++
			continue
		}
		lost = nLost
		if len(burst) != *antennas {
			log.Printf("burst %d: %d streams, expected %d; skipping", i, len(burst), *antennas)
			continue
		}
		res, err := safeReceive(rcv, burst)
		if err != nil {
			errCount++
			fmt.Printf("burst %d: DECODE FAILED (%v)\n", i, err)
			continue
		}
		frame, ferr := mac.Decode(res.PSDU)
		status := "FCS OK"
		if ferr != nil {
			errCount++
			status = "FCS BAD"
		} else {
			okCount++
		}
		fmt.Printf("burst %d: %s seq=%d %s snr=%.1fdB cfo=%.1fHz len=%d lost_dgrams=%d\n",
			i, status, seqOf(frame), res.MCS, res.SNRdB,
			res.CFO*20e6/(2*3.141592653589793), res.HTSIG.Length, lost)
	}
	if rxSock != nil {
		fmt.Printf("done: %d ok, %d errors, %d datagrams lost, %d corrupt, %d late\n",
			okCount, errCount, lost, rxSock.Corrupt, rxSock.Late)
	} else {
		fmt.Printf("done: %d ok, %d errors, %d datagrams lost\n", okCount, errCount, lost)
	}
}

// safeReceive contains a receiver panic on hostile input so one bad burst
// cannot take the listener down.
func safeReceive(rcv *phy.Receiver, burst [][]complex128) (res *phy.RxResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("receiver panic: %v", p)
		}
	}()
	return rcv.Receive(burst)
}

func seqOf(f *mac.Frame) int {
	if f == nil {
		return -1
	}
	return int(f.Seq)
}
