// Command mimonet-rx listens for IQ sample bursts over UDP (from a
// mimonet-tx process), runs the full MIMONet receiver on each, and prints a
// per-packet report: sync state, estimated SNR and CFO, MCS, and FCS
// outcome.
//
// The receive path runs as a two-block flowgraph (burst source → receiver
// sink) so block health and per-edge throughput are observable. With
// -metrics-listen the process additionally serves live telemetry:
// /metrics (Prometheus text: SNR/BER/PER series, block and edge
// instruments, link counters), /healthz (per-block health snapshots),
// /trace (recent per-packet stage traces) and /debug/pprof.
//
// Usage:
//
//	mimonet-rx -listen 127.0.0.1:9750 -antennas 2 -count 20
//	mimonet-rx -file burst.iq -metrics-listen 127.0.0.1:9751 -metrics-hold 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/blocks"
	"repro/internal/flowgraph"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/radio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mimonet-rx: ")
	var (
		listen        = flag.String("listen", "127.0.0.1:9750", "UDP listen address")
		antennas      = flag.Int("antennas", 2, "receive antenna count")
		detector      = flag.String("detector", "mmse", "MIMO detector: zf, mmse, sic, ml")
		count         = flag.Int("count", 0, "stop after this many bursts (0 = run forever)")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-burst receive timeout")
		file          = flag.String("file", "", "replay IQ bursts from this recording instead of listening on UDP")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics, /healthz, /trace and /debug/pprof on this address (empty = telemetry off)")
		metricsHold   = flag.Duration("metrics-hold", 0, "keep the telemetry server up this long after the stream ends, so scrapers catch the final values")
	)
	flag.Parse()

	// Telemetry root. A nil registry keeps every downstream hook a no-op.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
		rxObs  *phy.RxObs
	)
	if *metricsListen != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(256, nil)
		rxObs = phy.NewRxObs(reg, tracer)
	}

	var read func() ([][]complex128, uint64, error)
	var rxSock *radio.UDPReceiver
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sr := radio.NewStreamReader(f)
		read = func() ([][]complex128, uint64, error) {
			b, err := sr.ReadBurst()
			return b, 0, err
		}
		fmt.Printf("replaying from %s\n", *file)
	} else {
		sock, err := radio.NewUDPReceiver(*listen)
		if err != nil {
			log.Fatal(err)
		}
		defer sock.Close()
		if reg != nil {
			sock.Instrument(reg)
		}
		rxSock = sock
		read = func() ([][]complex128, uint64, error) {
			b, err := sock.ReadBurst(*timeout)
			return b, sock.Lost, err
		}
		fmt.Printf("listening on %s (%d antennas, %s detector)\n", sock.Addr(), *antennas, *detector)
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: *antennas, Detector: *detector})
	if err != nil {
		log.Fatal(err)
	}
	rcv.SetObs(rxObs)

	okCount, errCount, burstNo := 0, 0, 0
	var lost uint64
	src := &burstSource{antennas: *antennas, count: *count, read: read,
		onLost: func(n uint64) { lost = n }}
	sink := &blocks.RXBlock{RX: rcv, Antennas: *antennas, Obs: rxObs,
		OnReport: func(rep blocks.RXReport) {
			i := burstNo
			burstNo++
			if rep.Err != nil && (rep.Res == nil || rep.Res.PSDU == nil) {
				errCount++
				fmt.Printf("burst %d: DECODE FAILED (%v)\n", i, rep.Err)
				return
			}
			status := "FCS OK"
			if rep.Err != nil {
				errCount++
				status = "FCS BAD"
			} else {
				okCount++
			}
			res := rep.Res
			fmt.Printf("burst %d: %s seq=%d %s snr=%.1fdB cfo=%.1fHz len=%d lost_dgrams=%d\n",
				i, status, seqOf(rep.Frame), res.MCS, res.SNRdB,
				res.CFO*20e6/(2*3.141592653589793), res.HTSIG.Length, lost)
		}}

	g := flowgraph.New()
	if err := g.Add(src); err != nil {
		log.Fatal(err)
	}
	if err := g.Add(sink); err != nil {
		log.Fatal(err)
	}
	for a := 0; a < *antennas; a++ {
		if err := g.Connect(src, a, sink, a); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.SetPolicy(flowgraph.Policy{TrackHealth: true, Metrics: reg}); err != nil {
		log.Fatal(err)
	}

	if reg != nil {
		srv := obs.NewServer(reg, tracer, func() any { return g.Health() })
		addr, err := srv.Listen(*metricsListen)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", addr)
	}

	if err := g.Run(context.Background()); err != nil {
		log.Printf("flowgraph: %v", err)
	}
	if rxSock != nil {
		fmt.Printf("done: %d ok, %d errors, %d datagrams lost, %d corrupt, %d late\n",
			okCount, errCount, lost, rxSock.Corrupt, rxSock.Late)
	} else {
		fmt.Printf("done: %d ok, %d errors, %d datagrams lost\n", okCount, errCount, lost)
	}
	if *metricsListen != "" && *metricsHold > 0 {
		fmt.Printf("holding telemetry server for %s\n", *metricsHold)
		time.Sleep(*metricsHold)
	}
}

// burstSource adapts the burst reader (UDP socket or recording) into a
// 0-in, N-out flowgraph block, one output port per antenna.
type burstSource struct {
	antennas int
	count    int
	read     func() ([][]complex128, uint64, error)
	onLost   func(uint64)
}

// Name implements flowgraph.Block.
func (s *burstSource) Name() string { return "burst-source" }

// Inputs implements flowgraph.Block.
func (s *burstSource) Inputs() int { return 0 }

// Outputs implements flowgraph.Block.
func (s *burstSource) Outputs() int { return s.antennas }

// Run implements flowgraph.Block.
func (s *burstSource) Run(ctx context.Context, _ []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	for i := 0; s.count == 0 || i < s.count; i++ {
		burst, nLost, err := s.read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// A timed-out or malformed burst is an operational event on a
			// lossy link, not a reason to die.
			if errors.Is(err, os.ErrDeadlineExceeded) {
				log.Printf("burst %d: receive timeout; still listening", i)
				continue
			}
			log.Printf("burst %d: read failed (%v); skipping", i, err)
			continue
		}
		s.onLost(nLost)
		if len(burst) != s.antennas {
			log.Printf("burst %d: %d streams, expected %d; skipping", i, len(burst), s.antennas)
			continue
		}
		for a, stream := range burst {
			if !flowgraph.Send(ctx, out[a], stream) {
				return ctx.Err()
			}
		}
	}
	return nil
}

func seqOf(f *mac.Frame) int {
	if f == nil {
		return -1
	}
	return int(f.Seq)
}
