// Command mimonet-rx listens for IQ sample bursts over UDP (from a
// mimonet-tx process), runs the full MIMONet receiver on each, and logs a
// per-packet report: sync state, estimated SNR and CFO, MCS, and FCS
// outcome, keyed by the TX-assigned packet ID recovered from the radio
// framing header.
//
// The receive path runs as a two-block flowgraph (burst source → receiver
// sink) so block health and per-edge throughput are observable. With
// -metrics-listen the process additionally serves live telemetry:
// /metrics (Prometheus text: SNR/BER/PER series, block and edge
// instruments, link counters), /healthz (per-block health snapshots),
// /trace (recent per-packet stage traces), /debug/pprof, and — when
// -flight-dir is set — POST /dump to snapshot the flight recorder on
// demand. The flight recorder also dumps on its own triggers: CRC
// failures, supervisor restarts, and SNR collapses.
//
// Usage:
//
//	mimonet-rx -listen 127.0.0.1:9750 -antennas 2 -count 20
//	mimonet-rx -file burst.iq -metrics-listen 127.0.0.1:9751 -metrics-hold 30s
//	mimonet-rx -listen 127.0.0.1:9750 -flight-dir dumps/ -log-json
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/blocks"
	"repro/internal/flowgraph"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/stream"
	"repro/internal/phy"
	"repro/internal/radio"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:9750", "UDP listen address")
		antennas      = flag.Int("antennas", 2, "receive antenna count")
		detector      = flag.String("detector", "mmse", "MIMO detector: zf, mmse, sic, ml")
		count         = flag.Int("count", 0, "stop after this many bursts (0 = run forever)")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-burst receive timeout")
		file          = flag.String("file", "", "replay IQ bursts from this recording instead of listening on UDP")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics, /healthz, /trace, /dump and /debug/pprof on this address (empty = telemetry off)")
		metricsHold   = flag.Duration("metrics-hold", 0, "keep the telemetry server up this long after the stream ends, so scrapers catch the final values")
		flightDir     = flag.String("flight-dir", "", "write flight-recorder dumps to this directory (empty = recorder off)")
		snrDrop       = flag.Float64("flight-snr-drop", 10, "arm the recorder's SNR-collapse trigger at this many dB below the running mean (0 = off)")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, *logJSON, "rx")
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		os.Exit(1)
	}

	// Telemetry root. The trace ring and RxObs come up whenever either
	// consumer (the exposition server or the flight recorder) needs them; a
	// nil registry keeps the instruments standalone.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
		rxObs  *phy.RxObs
		rec    *flight.Recorder
	)
	var hub *stream.Hub
	if *metricsListen != "" {
		reg = obs.NewRegistry()
		obs.BuildInfo(reg, "rx")
	}
	if *metricsListen != "" || *flightDir != "" {
		tracer = obs.NewTracer(256, nil)
		tracer.SetRole("rx")
		rxObs = phy.NewRxObs(reg, tracer)
	}
	if *flightDir != "" {
		rec = flight.New(flight.Config{
			Capacity: 32, Dir: *flightDir, Node: "rx",
			OnFailure: true, OnRestart: true, SNRDropDB: *snrDrop,
		})
		rxObs.SetFlight(rec)
	}

	var read func() (burst [][]complex128, lost, packetID uint64, err error)
	var rxSock *radio.UDPReceiver
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("recording open failed", err)
		}
		defer f.Close()
		sr := radio.NewStreamReader(f)
		read = func() ([][]complex128, uint64, uint64, error) {
			b, err := sr.ReadBurst()
			return b, 0, sr.LastPacketID(), err
		}
		logger.Info("replaying", slog.String("file", *file))
	} else {
		sock, err := radio.NewUDPReceiver(*listen)
		if err != nil {
			fatal("UDP listen failed", err)
		}
		defer sock.Close()
		if reg != nil {
			sock.Instrument(reg)
		}
		rxSock = sock
		read = func() ([][]complex128, uint64, uint64, error) {
			b, err := sock.ReadBurst(*timeout)
			return b, sock.Lost, sock.LastPacketID(), err
		}
		logger.Info("listening", slog.String("addr", sock.Addr().String()),
			slog.Int("antennas", *antennas), slog.String("detector", *detector))
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: *antennas, Detector: *detector})
	if err != nil {
		fatal("receiver setup failed", err)
	}
	rcv.SetObs(rxObs)

	// The packet-ID relay: the source learns each burst's TX-assigned ID
	// from the transport header and queues it; the sink pops exactly one ID
	// per burst before decoding. Channel semantics give the necessary
	// happens-before between the two block goroutines.
	ids := make(chan uint64, 256)
	var curID uint64

	okCount, errCount, burstNo := 0, 0, 0
	var lost uint64
	src := &burstSource{antennas: *antennas, count: *count, read: read, log: logger,
		onLost: func(n uint64) { lost = n },
		onBurst: func(id uint64) {
			select {
			case ids <- id:
			default:
			}
		}}
	sink := &blocks.RXBlock{RX: rcv, Antennas: *antennas, Obs: rxObs,
		NextPacketID: func() uint64 {
			select {
			case curID = <-ids:
			default:
				curID = 0
			}
			return curID
		},
		OnReport: func(rep blocks.RXReport) {
			i := burstNo
			burstNo++
			if rep.Err != nil && (rep.Res == nil || rep.Res.PSDU == nil) {
				errCount++
				logger.Warn("decode failed", obs.LogBurst(i), obs.LogPacket(curID),
					slog.String("err", rep.Err.Error()))
				return
			}
			status := "ok"
			if rep.Err != nil {
				errCount++
				status = "fcs_bad"
			} else {
				okCount++
			}
			res := rep.Res
			logger.Info("burst decoded", obs.LogBurst(i), obs.LogPacket(curID),
				slog.String("fcs", status), slog.Int("seq", seqOf(rep.Frame)),
				slog.String("mcs", res.MCS.String()),
				slog.Float64("snr_db", res.SNRdB),
				slog.Float64("cfo_hz", res.CFO*20e6/(2*3.141592653589793)),
				slog.Int("len", int(res.HTSIG.Length)),
				slog.Uint64("lost_dgrams", lost))
		}}

	g := flowgraph.New()
	if err := g.Add(src); err != nil {
		fatal("graph build failed", err)
	}
	if err := g.Add(sink); err != nil {
		fatal("graph build failed", err)
	}
	for a := 0; a < *antennas; a++ {
		if err := g.Connect(src, a, sink, a); err != nil {
			fatal("graph connect failed", err)
		}
	}
	if reg != nil {
		hub = stream.NewHub(stream.Config{Node: "rx", Registry: reg, Tracer: tracer})
	}
	pol := flowgraph.Policy{TrackHealth: true, Metrics: reg, Logger: logger}
	if rec != nil || hub != nil {
		pol.OnRestart = func(block string, attempt int, err error) {
			reason := ""
			if err != nil {
				reason = err.Error()
			}
			hub.Publish(stream.Event{Type: stream.EventSupervisorRestart,
				Block: block, Attempt: attempt, Reason: reason})
			if rec == nil {
				return
			}
			if file, derr := rec.RestartObserved(block, attempt, err); derr == nil && file != "" {
				hub.Publish(stream.Event{Type: stream.EventFlightDump,
					Block: block, Reason: "restart", File: file})
				logger.Warn("flight dump on restart", obs.LogBlock(block), slog.String("file", file))
			}
		}
	}
	if err := g.SetPolicy(pol); err != nil {
		fatal("policy rejected", err)
	}

	if reg != nil {
		srv := obs.NewServer(reg, tracer, func() any { return g.Health() })
		if rec != nil {
			srv.SetDumper(rec.Dump)
		}
		srv.Handle("/stream", stream.Handler(hub))
		ctl := &stream.Control{}
		if rec != nil {
			ctl.FlightDump = rec.Dump
		}
		srv.Handle("/api/", ctl.Handler())
		go hub.Run(context.Background())
		addr, err := srv.Listen(*metricsListen)
		if err != nil {
			fatal("telemetry listen failed", err)
		}
		defer srv.Close()
		logger.Info("telemetry listening", slog.String("addr", "http://"+addr.String()+"/metrics"))
	}

	if err := g.Run(context.Background()); err != nil {
		logger.Error("flowgraph failed", slog.String("err", err.Error()))
	}
	if rxSock != nil {
		logger.Info("done", slog.Int("ok", okCount), slog.Int("errors", errCount),
			slog.Uint64("dgrams_lost", lost), slog.Uint64("dgrams_corrupt", rxSock.Corrupt),
			slog.Uint64("dgrams_late", rxSock.Late))
	} else {
		logger.Info("done", slog.Int("ok", okCount), slog.Int("errors", errCount),
			slog.Uint64("dgrams_lost", lost))
	}
	if rec != nil {
		dumpFile, err := rec.Dump("end_of_run")
		if err != nil {
			fatal("flight dump failed", err)
		}
		logger.Info("flight dump written", slog.String("file", dumpFile))
	}
	if *metricsListen != "" && *metricsHold > 0 {
		logger.Info("holding telemetry server", slog.Duration("hold", *metricsHold))
		time.Sleep(*metricsHold) //mimonet:wallclock CLI flag-driven hold before exit
	}
}

// burstSource adapts the burst reader (UDP socket or recording) into a
// 0-in, N-out flowgraph block, one output port per antenna.
type burstSource struct {
	antennas int
	count    int
	read     func() (burst [][]complex128, lost, packetID uint64, err error)
	onLost   func(uint64)
	// onBurst observes the TX-assigned packet ID of each accepted burst
	// before its chunks enter the graph.
	onBurst func(uint64)
	log     *slog.Logger
}

// Name implements flowgraph.Block.
func (s *burstSource) Name() string { return "burst-source" }

// Inputs implements flowgraph.Block.
func (s *burstSource) Inputs() int { return 0 }

// Outputs implements flowgraph.Block.
func (s *burstSource) Outputs() int { return s.antennas }

// Run implements flowgraph.Block.
func (s *burstSource) Run(ctx context.Context, _ []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	for i := 0; s.count == 0 || i < s.count; i++ {
		burst, nLost, packetID, err := s.read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// A timed-out or malformed burst is an operational event on a
			// lossy link, not a reason to die.
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.log.Warn("receive timeout; still listening", obs.LogBurst(i))
				continue
			}
			s.log.Warn("burst read failed; skipping", obs.LogBurst(i),
				slog.String("err", err.Error()))
			continue
		}
		s.onLost(nLost)
		if len(burst) != s.antennas {
			s.log.Warn("stream count mismatch; skipping", obs.LogBurst(i),
				slog.Int("streams", len(burst)), slog.Int("expected", s.antennas))
			continue
		}
		if s.onBurst != nil {
			s.onBurst(packetID)
		}
		for a, stream := range burst {
			if !flowgraph.Send(ctx, out[a], stream) {
				return ctx.Err()
			}
		}
	}
	return nil
}

func seqOf(f *mac.Frame) int {
	if f == nil {
		return -1
	}
	return int(f.Seq)
}
