// Command mimonet-info prints the transceiver's static structure: the MCS
// table, the HT-mixed PPDU layout, and the 20 MHz tone maps.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/ofdm"
	"repro/internal/phy"
	"repro/internal/preamble"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mimonet-info: ")
	payload := flag.Int("payload", 1500, "PSDU size used for the duration column")
	flag.Parse()

	fmt.Println("MCS table (20 MHz, long GI, equal modulation)")
	fmt.Printf("%4s  %4s  %-7s  %-4s  %6s  %6s  %7s  %8s  %9s\n",
		"mcs", "nss", "scheme", "rate", "ncbps", "ndbps", "mbps", "sgi_mbps", "dur_us")
	for idx := 0; idx <= 31; idx++ {
		m, err := phy.Lookup(idx)
		if err != nil {
			log.Fatal(err)
		}
		durUs := float64(phy.BurstLen(m, *payload)) / ofdm.SampleRate * 1e6
		fmt.Printf("%4d  %4d  %-7v  %-4v  %6d  %6d  %7.1f  %8.1f  %9.1f\n",
			idx, m.NSS, m.Scheme, m.Rate, m.NCBPS(), m.NDBPS(), m.DataRateMbps(), m.DataRateMbpsGI(true), durUs)
	}

	fmt.Println("\nHT-mixed PPDU layout (samples at 20 MHz)")
	fmt.Printf("  %-8s  %5d..%d\n", "L-STF", phy.OffLSTF, phy.OffLLTF-1)
	fmt.Printf("  %-8s  %5d..%d\n", "L-LTF", phy.OffLLTF, phy.OffLSIG-1)
	fmt.Printf("  %-8s  %5d..%d\n", "L-SIG", phy.OffLSIG, phy.OffHTSIG-1)
	fmt.Printf("  %-8s  %5d..%d\n", "HT-SIG", phy.OffHTSIG, phy.OffHTSTF-1)
	fmt.Printf("  %-8s  %5d..%d\n", "HT-STF", phy.OffHTSTF, phy.OffHTLTF-1)
	for nss := 1; nss <= 4; nss++ {
		fmt.Printf("  HT-LTFs (N_SS=%d): %d symbols, data starts at %d\n",
			nss, preamble.NumHTLTF(nss), phy.PreambleLen(nss))
	}

	fmt.Println("\nTone maps (FFT bins)")
	fmt.Printf("  legacy: %d data + %d pilots\n", ofdm.LegacyToneMap.NumData(), ofdm.NumPilots)
	fmt.Printf("  ht20:   %d data + %d pilots\n", ofdm.HTToneMap.NumData(), ofdm.NumPilots)
	fmt.Printf("  pilot bins: %v\n", ofdm.HTToneMap.Pilot)
}
