// Command mimonet-lint runs the repo's custom static analyzers
// (internal/analysis/*) over module packages and exits non-zero on any
// finding. It is stdlib-only — no golang.org/x/tools — so it works in the
// offline build environment; see internal/analysis/framework.
//
// Usage:
//
//	mimonet-lint [-only a,b] [-list] [patterns...]
//
// Patterns follow go-tool syntax relative to the module root: "./..."
// (default), "internal/ofdm/...", or a plain package directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis/cxnarrow"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/eobprop"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/portclose"
)

var all = []*framework.Analyzer{
	cxnarrow.Analyzer,
	detrand.Analyzer,
	eobprop.Analyzer,
	hotalloc.Analyzer,
	portclose.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mimonet-lint [-only a,b] [-list] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mimonet-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := framework.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mimonet-lint:", err)
		os.Exit(2)
	}
	loader := &framework.Loader{ModRoot: root, ModPath: modPath}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mimonet-lint:", err)
		os.Exit(2)
	}

	diags, err := framework.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mimonet-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mimonet-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only flag against the registry.
func selectAnalyzers(only string) ([]*framework.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*framework.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*framework.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(all))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return picked, nil
}
