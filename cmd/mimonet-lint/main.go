// Command mimonet-lint runs the repo's custom static analyzers
// (internal/analysis/*) over module packages and exits non-zero on any
// unbaselined finding. It is stdlib-only — no golang.org/x/tools — so it
// works in the offline build environment; see internal/analysis/framework.
//
// Usage:
//
//	mimonet-lint [-only a,b] [-list] [-json|-sarif] [-baseline file [-write-baseline]] [patterns...]
//
// Patterns follow go-tool syntax relative to the module root: "./..."
// (default), "internal/ofdm/...", or a plain package directory.
//
// -json and -sarif emit machine-readable reports on stdout (human lines are
// the default). -baseline names a checked-in suppression file: findings it
// covers are suppressed, anything new still fails; -write-baseline rewrites
// that file from the current findings and exits 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/clockseam"
	"repro/internal/analysis/cxnarrow"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/eobprop"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/obshygiene"
	"repro/internal/analysis/portclose"
	"repro/internal/analysis/wirecompat"
)

var all = []*framework.Analyzer{
	clockseam.Analyzer,
	cxnarrow.Analyzer,
	detrand.Analyzer,
	eobprop.Analyzer,
	goroleak.Analyzer,
	hotalloc.Analyzer,
	obshygiene.Analyzer,
	portclose.Analyzer,
	wirecompat.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run is the testable entry point: argv excludes the program name, dir
// anchors module discovery and relative -baseline paths, and the exit code
// is returned rather than passed to os.Exit.
func run(argv []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mimonet-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON report on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	baselinePath := fs.String("baseline", "", "baseline file suppressing known findings")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite -baseline from current findings and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mimonet-lint [-only a,b] [-list] [-json|-sarif] [-baseline file [-write-baseline]] [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "mimonet-lint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "mimonet-lint: -write-baseline requires -baseline")
		return 2
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "mimonet-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := framework.FindModule(dir)
	if err != nil {
		fmt.Fprintln(stderr, "mimonet-lint:", err)
		return 2
	}
	loader := &framework.Loader{ModRoot: root, ModPath: modPath}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "mimonet-lint:", err)
		return 2
	}

	diags, err := framework.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "mimonet-lint:", err)
		return 2
	}

	var suppressed []framework.Diagnostic
	if *baselinePath != "" {
		path := *baselinePath
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		if *writeBaseline {
			b := framework.NewBaseline(diags, root)
			if err := b.Write(path); err != nil {
				fmt.Fprintln(stderr, "mimonet-lint:", err)
				return 2
			}
			fmt.Fprintf(stderr, "mimonet-lint: wrote %s with %d entr%s absorbing %d finding(s)\n",
				*baselinePath, len(b.Entries), plural(len(b.Entries), "y", "ies"), len(diags))
			return 0
		}
		b, err := framework.LoadBaseline(path)
		if err != nil {
			fmt.Fprintln(stderr, "mimonet-lint:", err)
			return 2
		}
		diags, suppressed = b.Filter(diags, root)
	}

	switch {
	case *jsonOut:
		if err := framework.WriteJSON(stdout, diags, root); err != nil {
			fmt.Fprintln(stderr, "mimonet-lint:", err)
			return 2
		}
	case *sarifOut:
		if err := framework.WriteSARIF(stdout, diags, analyzers, root); err != nil {
			fmt.Fprintln(stderr, "mimonet-lint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	if len(suppressed) > 0 {
		fmt.Fprintf(stderr, "mimonet-lint: %d baselined finding(s) suppressed\n", len(suppressed))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mimonet-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// selectAnalyzers resolves the -only flag against the registry.
func selectAnalyzers(only string) ([]*framework.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*framework.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*framework.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(all))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return picked, nil
}
