package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

const fixtureModule = "testdata/module"

// runLint invokes the testable entry point against the fixture module.
func runLint(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(argv, fixtureModule, &out, &errb)
	return code, out.String(), errb.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./cmd/mimonet-lint -update` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s payload drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", name, path, got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	code, stdout, stderr := runLint(t, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has findings); stderr:\n%s", code, stderr)
	}
	checkGolden(t, "golden.json", stdout)
}

func TestSARIFGolden(t *testing.T) {
	code, stdout, stderr := runLint(t, "-sarif", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has findings); stderr:\n%s", code, stderr)
	}
	checkGolden(t, "golden.sarif", stdout)
}

// TestBaselineRoundTrip writes a baseline from the fixture's findings and
// verifies a rerun against it reports zero findings and exits 0.
func TestBaselineRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	code, _, stderr := runLint(t, "-baseline", baseline, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("-write-baseline exit code = %d, want 0; stderr:\n%s", code, stderr)
	}

	code, stdout, stderr := runLint(t, "-baseline", baseline, "./...")
	if code != 0 {
		t.Fatalf("baselined run exit code = %d, want 0; stderr:\n%s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined run printed findings:\n%s", stdout)
	}
	if !strings.Contains(stderr, "baselined finding(s) suppressed") {
		t.Errorf("stderr does not mention suppression:\n%s", stderr)
	}

	// A fresh violation must still fail through the baseline.
	code, _, _ = runLint(t, "-baseline", filepath.Join(t.TempDir(), "missing.json"), "./...")
	if code != 1 {
		t.Fatalf("run with empty baseline exit code = %d, want 1", code)
	}
}

func TestListAndOnly(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, name := range []string{"clockseam", "cxnarrow", "detrand", "eobprop", "goroleak", "hotalloc", "obshygiene", "portclose", "wirecompat"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}

	code, stdout, _ = runLint(t, "-only", "goroleak", "./...")
	if code != 0 {
		t.Fatalf("-only goroleak exit code = %d, want 0 (fixture has no goroleak findings); stdout:\n%s", code, stdout)
	}

	code, _, stderr := runLint(t, "-only", "nope", "./...")
	if code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Fatalf("-only nope: code=%d stderr=%q, want 2 + unknown analyzer", code, stderr)
	}
}
