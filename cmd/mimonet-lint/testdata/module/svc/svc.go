// Package svc is the mimonet-lint golden-test fixture: exactly one
// clockseam violation and one obshygiene violation at stable positions, so
// the -json and -sarif payloads can be compared byte-for-byte.
package svc

import "time"

// Label mirrors obs.Label so obshygiene's structural matching applies.
type Label struct{ Key, Value string }

// Pause escapes the clock seam on purpose.
func Pause() {
	time.Sleep(10 * time.Millisecond)
}

// Tag spells a canonical correlation key as a raw literal on purpose.
func Tag() Label {
	return Label{Key: "block", Value: "fft"}
}
