// Command mimonet-tx transmits MIMONet PPDUs as IQ sample streams over UDP
// (to a mimonet-rx process), optionally passing them through the simulated
// radio channel first — the software analogue of feeding USRP front-ends.
//
// Every burst carries a TX-assigned packet ID in the radio framing header,
// the correlation key mimonet-rx threads through its traces, logs, and
// flight-recorder evidence; with -flight-dir the transmit side keeps its own
// flight record so mimonet-dump can merge both ends into one link timeline.
//
// Usage:
//
//	mimonet-rx -listen 127.0.0.1:9750 &
//	mimonet-tx -addr 127.0.0.1:9750 -mcs 11 -count 20 -snr 25 -model tgn-b
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"time"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/phy"
	"repro/internal/radio"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:9750", "receiver UDP address")
		mcs           = flag.Int("mcs", 11, "modulation and coding scheme (0-31)")
		count         = flag.Int("count", 10, "number of frames to send")
		payload       = flag.Int("payload", 500, "payload size in octets")
		snr           = flag.Float64("snr", 30, "channel SNR in dB")
		model         = flag.String("model", "tgn-b", "channel model (identity, rayleigh, tgn-a..tgn-f)")
		cfo           = flag.Float64("cfo", 0, "carrier frequency offset in Hz")
		seed          = flag.Int64("seed", time.Now().UnixNano(), "random seed") //mimonet:wallclock default seed for a CLI entry point
		gapMs         = flag.Int("gap", 20, "inter-frame gap in milliseconds")
		file          = flag.String("file", "", "record IQ bursts to this file instead of sending over UDP")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics and /debug/pprof on this address (empty = telemetry off)")
		flightDir     = flag.String("flight-dir", "", "write flight-recorder dumps to this directory (empty = recorder off)")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, *logJSON, "tx")
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		os.Exit(1)
	}

	var rec *flight.Recorder
	if *flightDir != "" {
		rec = flight.New(flight.Config{Capacity: 64, Dir: *flightDir, Node: "tx"})
	}

	var frames, samples *obs.Counter
	if *metricsListen != "" {
		reg := obs.NewRegistry()
		obs.BuildInfo(reg, "tx")
		frames = reg.Counter("mimonet_tx_frames_total", "PPDU bursts transmitted")
		samples = reg.Counter("mimonet_tx_samples_total", "baseband samples produced per chain")
		srv := obs.NewServer(reg, nil, nil)
		if rec != nil {
			srv.SetDumper(rec.Dump)
		}
		maddr, err := srv.Listen(*metricsListen)
		if err != nil {
			fatal("telemetry listen failed", err)
		}
		defer srv.Close()
		logger.Info("telemetry listening", slog.String("addr", "http://"+maddr.String()+"/metrics"))
	}

	m, err := channel.ParseModel(*model)
	if err != nil {
		fatal("bad channel model", err)
	}
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: *mcs})
	if err != nil {
		fatal("transmitter setup failed", err)
	}
	ch, err := channel.New(channel.Config{
		NumTX: tx.NumChains(), NumRX: tx.NumChains(),
		Model: m, SNRdB: *snr, Seed: *seed,
		CFOHz: *cfo, SampleRate: 20e6,
		TimingOffset: 300, TrailingSilence: 150,
	})
	if err != nil {
		fatal("channel setup failed", err)
	}
	var write func(uint64, [][]complex128) error
	if *file != "" {
		f, err := os.Create(*file)
		if err != nil {
			fatal("recording file", err)
		}
		defer f.Close()
		w, err := radio.NewStreamWriter(f, tx.NumChains())
		if err != nil {
			fatal("stream writer setup failed", err)
		}
		write = w.WriteBurstID
	} else {
		sender, err := radio.NewUDPSender(*addr, tx.NumChains())
		if err != nil {
			fatal("UDP sender setup failed", err)
		}
		defer sender.Close()
		write = sender.WriteBurstID
	}

	r := rand.New(rand.NewSource(*seed))
	buf := make([]byte, *payload)
	for i := 0; i < *count; i++ {
		r.Read(buf)
		// The packet ID is the cross-process correlation key: stamped into
		// the framing header here, recovered by mimonet-rx from the first
		// datagram of the burst.
		packetID := uint64(i) + 1
		frame := &mac.Frame{Seq: uint16(i & 0x0FFF), Payload: buf}
		psdu, err := frame.Encode()
		if err != nil {
			fatal("frame encode failed", err)
		}
		burst, err := tx.Transmit(psdu)
		if err != nil {
			fatal("transmit failed", err)
		}
		faded, err := ch.Apply(burst)
		if err != nil {
			fatal("channel apply failed", err)
		}
		if err := write(packetID, faded); err != nil {
			fatal("burst write failed", err)
		}
		frames.Inc()
		samples.Add(int64(len(faded[0])))
		if rec != nil {
			rec.Record(flight.Evidence{
				PacketID: packetID,
				Verdict:  flight.VerdictSent,
				MCS:      *mcs,
				SNRdB:    *snr,
				Note:     fmt.Sprintf("seq=%d octets=%d samples/chain=%d", frame.Seq, len(psdu), len(faded[0])),
			})
		}
		logger.Info("sent frame", obs.LogPacket(packetID),
			slog.Int("seq", int(frame.Seq)), slog.Int("octets", len(psdu)),
			slog.String("mcs", fmt.Sprint(tx.MCS())), slog.Int("samples_per_chain", len(faded[0])))
		time.Sleep(time.Duration(*gapMs) * time.Millisecond) //mimonet:wallclock CLI pacing of real transmissions
	}
	if rec != nil {
		dumpFile, err := rec.Dump("end_of_run")
		if err != nil {
			fatal("flight dump failed", err)
		}
		logger.Info("flight dump written", slog.String("file", dumpFile))
	}
}
