// Command mimonet-tx transmits MIMONet PPDUs as IQ sample streams over UDP
// (to a mimonet-rx process), optionally passing them through the simulated
// radio channel first — the software analogue of feeding USRP front-ends.
//
// Usage:
//
//	mimonet-rx -listen 127.0.0.1:9750 &
//	mimonet-tx -addr 127.0.0.1:9750 -mcs 11 -count 20 -snr 25 -model tgn-b
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/radio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mimonet-tx: ")
	var (
		addr          = flag.String("addr", "127.0.0.1:9750", "receiver UDP address")
		mcs           = flag.Int("mcs", 11, "modulation and coding scheme (0-31)")
		count         = flag.Int("count", 10, "number of frames to send")
		payload       = flag.Int("payload", 500, "payload size in octets")
		snr           = flag.Float64("snr", 30, "channel SNR in dB")
		model         = flag.String("model", "tgn-b", "channel model (identity, rayleigh, tgn-a..tgn-f)")
		cfo           = flag.Float64("cfo", 0, "carrier frequency offset in Hz")
		seed          = flag.Int64("seed", time.Now().UnixNano(), "random seed")
		gapMs         = flag.Int("gap", 20, "inter-frame gap in milliseconds")
		file          = flag.String("file", "", "record IQ bursts to this file instead of sending over UDP")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics and /debug/pprof on this address (empty = telemetry off)")
	)
	flag.Parse()

	var frames, samples *obs.Counter
	if *metricsListen != "" {
		reg := obs.NewRegistry()
		frames = reg.Counter("mimonet_tx_frames_total", "PPDU bursts transmitted")
		samples = reg.Counter("mimonet_tx_samples_total", "baseband samples produced per chain")
		srv := obs.NewServer(reg, nil, nil)
		maddr, err := srv.Listen(*metricsListen)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", maddr)
	}

	m, err := channel.ParseModel(*model)
	if err != nil {
		log.Fatal(err)
	}
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: *mcs})
	if err != nil {
		log.Fatal(err)
	}
	ch, err := channel.New(channel.Config{
		NumTX: tx.NumChains(), NumRX: tx.NumChains(),
		Model: m, SNRdB: *snr, Seed: *seed,
		CFOHz: *cfo, SampleRate: 20e6,
		TimingOffset: 300, TrailingSilence: 150,
	})
	if err != nil {
		log.Fatal(err)
	}
	var write func([][]complex128) error
	if *file != "" {
		f, err := os.Create(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w, err := radio.NewStreamWriter(f, tx.NumChains())
		if err != nil {
			log.Fatal(err)
		}
		write = w.WriteBurst
	} else {
		sender, err := radio.NewUDPSender(*addr, tx.NumChains())
		if err != nil {
			log.Fatal(err)
		}
		defer sender.Close()
		write = sender.WriteBurst
	}

	r := rand.New(rand.NewSource(*seed))
	buf := make([]byte, *payload)
	for i := 0; i < *count; i++ {
		r.Read(buf)
		frame := &mac.Frame{Seq: uint16(i & 0x0FFF), Payload: buf}
		psdu, err := frame.Encode()
		if err != nil {
			log.Fatal(err)
		}
		burst, err := tx.Transmit(psdu)
		if err != nil {
			log.Fatal(err)
		}
		faded, err := ch.Apply(burst)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(faded); err != nil {
			log.Fatal(err)
		}
		frames.Inc()
		samples.Add(int64(len(faded[0])))
		fmt.Printf("sent frame %d: %d octets, %s, %d samples/chain\n",
			i, len(psdu), tx.MCS(), len(faded[0]))
		time.Sleep(time.Duration(*gapMs) * time.Millisecond)
	}
}
