// Command mimonet-ctl is the fleet telemetry aggregator and control CLI: it
// subscribes to the /stream endpoint of N mimonet nodes (gateway, access
// point, receiver — anything serving the obs telemetry surface), merges the
// per-node journals and delta-encoded metric snapshots into one fleet view
// keyed by node/session/station, and drives the node control APIs. Verbs:
//
//	mimonet-ctl -nodes gw=http://127.0.0.1:9801,ap=http://127.0.0.1:9901 tail
//	    Stream every merged message as one JSON object per line — the
//	    machine-readable mode CI and log pipelines consume.
//
//	mimonet-ctl -nodes ... watch
//	    Live text dashboard: per-node journal position, restarts, session
//	    and station tables with per-station PER / throughput / CSI age,
//	    refreshed every -interval.
//
//	mimonet-ctl -nodes ... sessions | stations
//	    One-shot control reads: print each node's live session or station
//	    table.
//
//	mimonet-ctl -nodes gw=http://... -bytes 262144 transfer
//	    Start a loopback transfer through a gateway node and print the
//	    session ID it was assigned.
//
//	mimonet-ctl -nodes rx=http://... -reason why dump
//	    Trigger a flight-recorder dump on a node and print the artifact.
//
// -duration bounds tail/watch (0 runs until interrupt); -node picks the
// target for transfer/dump when several nodes are configured.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/obs/stream"
)

func main() {
	var (
		nodesFlag = flag.String("nodes", "", "comma-separated name=base-url telemetry endpoints (e.g. gw=http://127.0.0.1:9801,ap=http://127.0.0.1:9901)")
		duration  = flag.Duration("duration", 0, "tail/watch: stop after this long (0 = until interrupt)")
		interval  = flag.Duration("interval", time.Second, "watch: dashboard refresh cadence")
		bytesN    = flag.Int("bytes", 64*1024, "transfer: payload size in bytes")
		reason    = flag.String("reason", "mimonet-ctl", "dump: flight-recorder dump reason")
		nodeName  = flag.String("node", "", "transfer/dump: target node name (default: the first configured node)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, *logJSON, "ctl")
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		os.Exit(1)
	}
	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		fatal("bad -nodes", err)
	}
	verb := flag.Arg(0)
	if verb == "" {
		verb = "watch"
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 && (verb == "tail" || verb == "watch") {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	switch verb {
	case "tail":
		err = runTail(ctx, nodes, os.Stdout)
	case "watch":
		err = runWatch(ctx, nodes, os.Stdout, *interval)
	case "sessions":
		err = runGet(ctx, nodes, "/api/sessions", os.Stdout, logger)
	case "stations":
		err = runGet(ctx, nodes, "/api/stations", os.Stdout, logger)
	case "transfer":
		n, perr := pickNode(nodes, *nodeName)
		if perr != nil {
			fatal("transfer", perr)
		}
		err = runPost(ctx, n, fmt.Sprintf("/api/transfer?bytes=%d", *bytesN), os.Stdout)
	case "dump":
		n, perr := pickNode(nodes, *nodeName)
		if perr != nil {
			fatal("dump", perr)
		}
		err = runPost(ctx, n, "/api/dump?reason="+url.QueryEscape(*reason), os.Stdout)
	default:
		fatal("verb", fmt.Errorf("unknown verb %q (want tail, watch, sessions, stations, transfer or dump)", verb))
	}
	if err != nil {
		fatal(verb+" failed", err)
	}
}

// parseNodes decodes the -nodes flag: comma-separated name=base-url pairs.
func parseNodes(s string) ([]stream.NodeRef, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("need -nodes name=base-url[,name=base-url...]")
	}
	var out []stream.NodeRef
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, base, ok := strings.Cut(part, "=")
		if !ok || name == "" || base == "" {
			return nil, fmt.Errorf("entry %q: want name=base-url", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("node name %q given twice", name)
		}
		seen[name] = true
		out = append(out, stream.NodeRef{Name: name, BaseURL: strings.TrimRight(base, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("need at least one node")
	}
	return out, nil
}

func pickNode(nodes []stream.NodeRef, name string) (stream.NodeRef, error) {
	if name == "" {
		return nodes[0], nil
	}
	for _, n := range nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return stream.NodeRef{}, fmt.Errorf("node %q not in -nodes", name)
}

// runTail streams every merged message as one JSON object per line.
func runTail(ctx context.Context, nodes []stream.NodeRef, w io.Writer) error {
	out := make(chan stream.Msg, 256)
	done := make(chan error, 1)
	agg := &stream.Aggregator{Nodes: nodes}
	go func() { done <- agg.Run(ctx, out) }()
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for {
		select {
		case m := <-out:
			if err := enc.Encode(m); err != nil {
				return err
			}
			// Line-buffered semantics: a consumer tailing the pipe sees
			// each message as soon as it is merged.
			if err := bw.Flush(); err != nil {
				return err
			}
		case err := <-done:
			for {
				select {
				case m := <-out:
					if eerr := enc.Encode(m); eerr != nil {
						return eerr
					}
				default:
					return err
				}
			}
		case <-ctx.Done():
			return nil
		}
	}
}

// runWatch folds the merged stream into a Fleet and renders the dashboard
// on every interval tick.
func runWatch(ctx context.Context, nodes []stream.NodeRef, w io.Writer, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	fleet := stream.NewFleet()
	out := make(chan stream.Msg, 256)
	done := make(chan error, 1)
	agg := &stream.Aggregator{Nodes: nodes}
	go func() { done <- agg.Run(ctx, out) }()
	clk := clock.Or(nil)
	tk := clk.NewTicker(interval)
	defer tk.Stop()
	for {
		select {
		case m := <-out:
			fleet.Apply(m)
		case <-tk.C:
			render(w, fleet.Snapshot())
		case err := <-done:
			render(w, fleet.Snapshot())
			return err
		case <-ctx.Done():
			render(w, fleet.Snapshot())
			return nil
		}
	}
}

// render draws the fleet dashboard: one block per node with its journal
// position and the session/station tables.
func render(w io.Writer, views []stream.NodeView) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	fmt.Fprint(bw, "\033[2J\033[H") // clear screen, home cursor
	if len(views) == 0 {
		fmt.Fprintln(bw, "mimonet-ctl: waiting for streams...")
		return
	}
	for _, n := range views {
		fmt.Fprintf(bw, "== %s  seq=%d events=%d snapshots=%d series=%d restarts=%d",
			n.Name, n.Seq, n.Events, n.Snapshots, len(n.Metrics), n.Restarts)
		if n.OrderViolations > 0 {
			fmt.Fprintf(bw, " ORDER-VIOLATIONS=%d", n.OrderViolations)
		}
		if n.LastEvent != "" {
			fmt.Fprintf(bw, " last=%s", n.LastEvent)
		}
		fmt.Fprintln(bw)
		if len(n.Sessions) > 0 {
			fmt.Fprintf(bw, "  %-10s %-10s %12s %8s\n", "session", "state", "bytes", "resumes")
			for _, s := range sortedSessions(n.Sessions) {
				fmt.Fprintf(bw, "  %-10d %-10s %12d %8d\n", s.ID, s.State, s.Bytes, s.Resumes)
			}
		}
		if len(n.Stations) > 0 {
			fmt.Fprintf(bw, "  %-8s %-4s %-11s %8s %12s %10s %s\n",
				"station", "slot", "state", "per", "tx_bytes", "csi_age_s", "csi")
			for _, s := range sortedStations(n.Stations) {
				csi := "fresh"
				if s.CSIStale {
					csi = "STALE"
				}
				fmt.Fprintf(bw, "  %-8d %-4d %-11s %8.3f %12.0f %10.3f %s\n",
					s.ID, s.Slot, s.State, s.PER, s.TxBytes, s.CSIAgeS, csi)
			}
		}
	}
}

func sortedSessions(m map[uint64]*stream.SessionView) []*stream.SessionView {
	out := make([]*stream.SessionView, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sortedStations(m map[uint16]*stream.StationView) []*stream.StationView {
	out := make([]*stream.StationView, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// runGet prints each node's answer to a control read, tagged by node name.
func runGet(ctx context.Context, nodes []stream.NodeRef, path string, w io.Writer, logger *slog.Logger) error {
	failures := 0
	for _, n := range nodes {
		body, err := fetch(ctx, http.MethodGet, n.BaseURL+path)
		if err != nil {
			failures++
			logger.Warn("control read failed", slog.String(obs.KeyNode, n.Name), slog.String("err", err.Error()))
			continue
		}
		fmt.Fprintf(w, "%s:\n%s", n.Name, body)
	}
	if failures == len(nodes) {
		return fmt.Errorf("every node refused %s", path)
	}
	return nil
}

// runPost drives one control verb on one node and prints the answer.
func runPost(ctx context.Context, n stream.NodeRef, path string, w io.Writer) error {
	body, err := fetch(ctx, http.MethodPost, n.BaseURL+path)
	if err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	fmt.Fprintf(w, "%s:\n%s", n.Name, body)
	return nil
}

func fetch(ctx context.Context, method, u string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, method, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}
