package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, res, err := parseLine("BenchmarkE1UncodedBER-8   \t 42   123456 ns/op  2048 B/op   17 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if name != "BenchmarkE1UncodedBER" {
		t.Errorf("name = %q, want suffix stripped", name)
	}
	if res.Iterations != 42 || res.NsPerOp != 123456 || res.BytesPerOp != 2048 || res.AllocsPerOp != 17 {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestParseLineThroughput(t *testing.T) {
	name, res, err := parseLine("BenchmarkTXChain/mcs7-4 100 5000 ns/op 350.25 MB/s 0 B/op 0 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if name != "BenchmarkTXChain/mcs7" {
		t.Errorf("name = %q", name)
	}
	if res.MBPerSec != 350.25 {
		t.Errorf("MB/s = %v", res.MBPerSec)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	name, res, err := parseLine("BenchmarkRealtime-4 334 6877668 ns/op 1.102 realtime 22049361 samples/sec 2575289 B/op 618 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if name != "BenchmarkRealtime" {
		t.Errorf("name = %q", name)
	}
	if res.Metrics["samples/sec"] != 22049361 || res.Metrics["realtime"] != 1.102 {
		t.Errorf("custom metrics not captured: %+v", res.Metrics)
	}
	if res.BytesPerOp != 2575289 || res.AllocsPerOp != 618 {
		t.Errorf("standard columns lost around custom ones: %+v", res)
	}
}

func TestParseLineSkipsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkE5PERvsSNR", // name echoed without measurements
		"Benchmark notes: warming up",
	} {
		name, _, err := parseLine(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if name != "" {
			t.Errorf("%q parsed as result %q, want skip", line, name)
		}
	}
}

func TestParseStream(t *testing.T) {
	stream := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel Xeon
BenchmarkE1UncodedBER-8   10   1000 ns/op   64 B/op   2 allocs/op
BenchmarkE5PERvsSNR-8      5   2000 ns/op  128 B/op   3 allocs/op
PASS
ok  	repro	1.234s
`
	doc := document{Env: map[string]string{}, Benchmarks: map[string]result{}}
	if err := parse(strings.NewReader(stream), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] != "Intel Xeon" {
		t.Errorf("env not captured: %+v", doc.Env)
	}
	if got := doc.Benchmarks["BenchmarkE5PERvsSNR"]; got.NsPerOp != 2000 || got.AllocsPerOp != 3 {
		t.Errorf("E5 result: %+v", got)
	}
}

func TestParseStreamKeepsFastestRepetition(t *testing.T) {
	// go test -count 3 emits the same benchmark name repeatedly; the fastest
	// repetition wins and its whole line (including custom metrics) is kept.
	stream := `BenchmarkRealtime-8   100   7000000 ns/op   1.05 realtime   21000000 samples/sec
BenchmarkRealtime-8   100   6000000 ns/op   1.20 realtime   24000000 samples/sec
BenchmarkRealtime-8   100   6500000 ns/op   1.10 realtime   22000000 samples/sec
`
	doc := document{Env: map[string]string{}, Benchmarks: map[string]result{}}
	if err := parse(strings.NewReader(stream), &doc); err != nil {
		t.Fatal(err)
	}
	got := doc.Benchmarks["BenchmarkRealtime"]
	if got.NsPerOp != 6000000 {
		t.Fatalf("kept ns/op %v, want fastest 6000000", got.NsPerOp)
	}
	if got.Metrics["samples/sec"] != 24000000 || got.Metrics["realtime"] != 1.20 {
		t.Errorf("metrics not from the fastest line: %+v", got.Metrics)
	}
}
