package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, res, err := parseLine("BenchmarkE1UncodedBER-8   \t 42   123456 ns/op  2048 B/op   17 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if name != "BenchmarkE1UncodedBER" {
		t.Errorf("name = %q, want suffix stripped", name)
	}
	if res.Iterations != 42 || res.NsPerOp != 123456 || res.BytesPerOp != 2048 || res.AllocsPerOp != 17 {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestParseLineThroughput(t *testing.T) {
	name, res, err := parseLine("BenchmarkTXChain/mcs7-4 100 5000 ns/op 350.25 MB/s 0 B/op 0 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if name != "BenchmarkTXChain/mcs7" {
		t.Errorf("name = %q", name)
	}
	if res.MBPerSec != 350.25 {
		t.Errorf("MB/s = %v", res.MBPerSec)
	}
}

func TestParseLineSkipsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkE5PERvsSNR", // name echoed without measurements
		"Benchmark notes: warming up",
	} {
		name, _, err := parseLine(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if name != "" {
			t.Errorf("%q parsed as result %q, want skip", line, name)
		}
	}
}

func TestParseStream(t *testing.T) {
	stream := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel Xeon
BenchmarkE1UncodedBER-8   10   1000 ns/op   64 B/op   2 allocs/op
BenchmarkE5PERvsSNR-8      5   2000 ns/op  128 B/op   3 allocs/op
PASS
ok  	repro	1.234s
`
	doc := document{Env: map[string]string{}, Benchmarks: map[string]result{}}
	if err := parse(strings.NewReader(stream), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] != "Intel Xeon" {
		t.Errorf("env not captured: %+v", doc.Env)
	}
	if got := doc.Benchmarks["BenchmarkE5PERvsSNR"]; got.NsPerOp != 2000 || got.AllocsPerOp != 3 {
		t.Errorf("E5 result: %+v", got)
	}
}
