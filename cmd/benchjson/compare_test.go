package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, benches map[string]result) string {
	t.Helper()
	doc := document{Env: map[string]string{}, Benchmarks: benches}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePassesWithinGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", map[string]result{
		"BenchmarkE1": {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkE2": {NsPerOp: 500, AllocsPerOp: 3},
	})
	newPath := writeDoc(t, dir, "new.json", map[string]result{
		"BenchmarkE1": {NsPerOp: 1100, AllocsPerOp: 10}, // +10%, inside the 15% gate
		"BenchmarkE2": {NsPerOp: 400, AllocsPerOp: 3},   // improvement
	})
	var out bytes.Buffer
	if err := runCompare(&out, oldPath, newPath, nil); err != nil {
		t.Fatalf("compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkE1") || !strings.Contains(out.String(), "+10.0%") {
		t.Errorf("delta output missing expected lines:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("no benchmark should be marked regressed:\n%s", out.String())
	}
}

func TestCompareFailsBeyondGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", map[string]result{
		"BenchmarkE1": {NsPerOp: 1000, AllocsPerOp: 10},
	})
	newPath := writeDoc(t, dir, "new.json", map[string]result{
		"BenchmarkE1": {NsPerOp: 1200, AllocsPerOp: 12}, // +20% ns/op
	})
	var out bytes.Buffer
	err := runCompare(&out, oldPath, newPath, nil)
	if err == nil {
		t.Fatalf("compare passed a 20%% regression:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkE1") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("delta line not marked:\n%s", out.String())
	}
}

func TestCompareReportsOneSidedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", map[string]result{
		"BenchmarkGone": {NsPerOp: 100},
	})
	newPath := writeDoc(t, dir, "new.json", map[string]result{
		"BenchmarkNew": {NsPerOp: 100},
	})
	var out bytes.Buffer
	if err := runCompare(&out, oldPath, newPath, nil); err != nil {
		t.Fatalf("renames must not gate: %v", err)
	}
	if !strings.Contains(out.String(), "BenchmarkGone") || !strings.Contains(out.String(), "BenchmarkNew") {
		t.Errorf("one-sided benchmarks not reported:\n%s", out.String())
	}
}

func TestCompareCustomMetricsAndFloors(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", map[string]result{
		"BenchmarkRealtime": {NsPerOp: 9e6, Metrics: map[string]float64{"samples/sec": 17e6}},
	})
	newPath := writeDoc(t, dir, "new.json", map[string]result{
		"BenchmarkRealtime": {NsPerOp: 7e6, Metrics: map[string]float64{"samples/sec": 22e6}},
	})
	var out bytes.Buffer
	pass := []floor{{bench: "BenchmarkRealtime", unit: "samples/sec", value: 20e6}}
	if err := runCompare(&out, oldPath, newPath, pass); err != nil {
		t.Fatalf("floor within bound failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "samples/sec") || !strings.Contains(out.String(), "floor ok") {
		t.Errorf("metric delta or floor line missing:\n%s", out.String())
	}

	out.Reset()
	fail := []floor{{bench: "BenchmarkRealtime", unit: "samples/sec", value: 25e6}}
	err := runCompare(&out, oldPath, newPath, fail)
	if err == nil {
		t.Fatalf("floor above measurement must gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FLOOR") {
		t.Errorf("floor miss not reported:\n%s", out.String())
	}

	out.Reset()
	missing := []floor{{bench: "BenchmarkGone", unit: "samples/sec", value: 1}}
	if err := runCompare(&out, oldPath, newPath, missing); err == nil {
		t.Error("floor on an absent benchmark must gate")
	}
	out.Reset()
	nounit := []floor{{bench: "BenchmarkRealtime", unit: "widgets/sec", value: 1}}
	if err := runCompare(&out, oldPath, newPath, nounit); err == nil {
		t.Error("floor on an absent metric must gate")
	}
}

func TestFloorFlagParsing(t *testing.T) {
	var f floorFlags
	if err := f.Set("BenchmarkRealtime=samples/sec:20000000"); err != nil {
		t.Fatal(err)
	}
	if len(f) != 1 || f[0].bench != "BenchmarkRealtime" || f[0].unit != "samples/sec" || f[0].value != 20e6 {
		t.Errorf("parsed %+v", f)
	}
	for _, bad := range []string{"", "NoEquals", "B=", "B=unit", "B=unit:", "B=unit:notanumber"} {
		var g floorFlags
		if err := g.Set(bad); err == nil {
			t.Errorf("%q should be rejected", bad)
		}
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", map[string]result{"B": {NsPerOp: 0}})
	newPath := writeDoc(t, dir, "new.json", map[string]result{"B": {NsPerOp: 50}})
	var out bytes.Buffer
	if err := runCompare(&out, oldPath, newPath, nil); err != nil {
		t.Fatalf("zero baseline must not gate: %v", err)
	}
}
