// Command benchjson converts `go test -bench` text output into a stable
// JSON document mapping each benchmark name to its measured ns/op, B/op and
// allocs/op. The repo's tracked baseline (BENCH_pr3.json) is produced this
// way so benchmark regressions diff like source:
//
//	go test -bench . -benchmem -run '^$' . | go run ./cmd/benchjson > BENCH_pr3.json
//
// Input is read from stdin (or from files named as arguments). Lines that
// are not benchmark result lines — the goos/goarch/pkg header, PASS/ok
// trailers, sub-test logging — are ignored, so the raw `go test` stream can
// be piped straight in. Metadata lines (goos, goarch, cpu, core count) are
// captured into an "env" object so the baseline records the machine it was
// measured on.
//
// Comparison mode diffs two such documents and gates regressions:
//
//	benchjson -compare BENCH_pr3.json BENCH_new.json
//
// prints per-benchmark ns/op and allocs/op deltas and exits 1 when any
// benchmark present in both documents regressed by more than 15% ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark line's measurements. B/op and allocs/op are
// only meaningful when the run passed -benchmem (the Makefile target does).
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

type document struct {
	Env        map[string]string `json:"env"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// maxNsRegression is the comparison gate: ns/op growth beyond this fraction
// fails the run.
const maxNsRegression = 0.15

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	compare := flag.Bool("compare", false, "compare two benchmark JSON documents (old new) instead of converting")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("usage: benchjson -compare old.json new.json")
		}
		if err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			log.Fatal(err)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, name := range args {
			f, err := os.Open(name)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	doc := document{
		Env: map[string]string{
			"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
			"go_version": runtime.Version(),
		},
		Benchmarks: map[string]result{},
	}
	if err := parse(in, &doc); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered(doc)); err != nil {
		log.Fatal(err)
	}
}

// parse consumes the go test stream, collecting benchmark lines and the
// goos/goarch/cpu header into doc.
func parse(r io.Reader, doc *document) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu", "pkg"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, res, err := parseLine(line)
		if err != nil {
			return fmt.Errorf("%q: %w", line, err)
		}
		if name != "" {
			doc.Benchmarks[name] = res
		}
	}
	return sc.Err()
}

// parseLine decodes one "BenchmarkName-8  123  456 ns/op  789 B/op ..."
// line. A Benchmark-prefixed line without the fixed name/iterations shape
// (e.g. a log line that happens to start with the word) is skipped by
// returning an empty name.
func parseLine(line string) (string, result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", result{}, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, nil
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := result{Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, fmt.Errorf("bad value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		case "MB/s":
			res.MBPerSec = v
		}
	}
	return name, res, nil
}

// loadDoc reads one benchmark JSON document from disk.
func loadDoc(path string) (document, error) {
	var doc document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// runCompare diffs two benchmark documents, writing one delta line per
// benchmark present in both, and returns an error naming every benchmark
// whose ns/op regressed beyond the gate. Benchmarks present on only one
// side are reported but never gate (renames must not fail CI silently in
// either direction).
func runCompare(w io.Writer, oldPath, newPath string) error {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldDoc.Benchmarks))
	for name := range oldDoc.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressed []string
	for _, name := range names {
		ob := oldDoc.Benchmarks[name]
		nb, ok := newDoc.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-40s only in %s\n", name, oldPath)
			continue
		}
		dns := delta(ob.NsPerOp, nb.NsPerOp)
		dallocs := delta(ob.AllocsPerOp, nb.AllocsPerOp)
		mark := ""
		if dns > maxNsRegression {
			mark = "  REGRESSION"
			regressed = append(regressed, name)
		}
		fmt.Fprintf(w, "%-40s ns/op %12.1f -> %12.1f (%+6.1f%%)  allocs/op %8.0f -> %8.0f (%+6.1f%%)%s\n",
			name, ob.NsPerOp, nb.NsPerOp, 100*dns, ob.AllocsPerOp, nb.AllocsPerOp, 100*dallocs, mark)
	}
	for name := range newDoc.Benchmarks {
		if _, ok := oldDoc.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-40s only in %s\n", name, newPath)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("ns/op regression beyond %d%%: %s",
			int(maxNsRegression*100), strings.Join(regressed, ", "))
	}
	return nil
}

// delta returns (new-old)/old, or 0 when the baseline is zero (nothing to
// regress against).
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

// ordered re-materialises the document with benchmark keys sorted so the
// JSON is byte-stable run to run (encoding/json sorts map keys, but being
// explicit keeps the contract obvious and survives a future switch to a
// slice representation).
func ordered(doc document) any {
	names := make([]string, 0, len(doc.Benchmarks))
	for name := range doc.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	benches := make(map[string]result, len(names))
	for _, name := range names {
		benches[name] = doc.Benchmarks[name]
	}
	return document{Env: doc.Env, Benchmarks: benches}
}
