// Command benchjson converts `go test -bench` text output into a stable
// JSON document mapping each benchmark name to its measured ns/op, B/op and
// allocs/op. The repo's tracked baseline (BENCH_pr3.json) is produced this
// way so benchmark regressions diff like source:
//
//	go test -bench . -benchmem -run '^$' . | go run ./cmd/benchjson > BENCH_pr3.json
//
// Input is read from stdin (or from files named as arguments). Lines that
// are not benchmark result lines — the goos/goarch/pkg header, PASS/ok
// trailers, sub-test logging — are ignored, so the raw `go test` stream can
// be piped straight in. Metadata lines (goos, goarch, cpu, core count) are
// captured into an "env" object so the baseline records the machine it was
// measured on.
//
// Comparison mode diffs two such documents and gates regressions:
//
//	benchjson -compare BENCH_pr3.json BENCH_new.json
//
// prints per-benchmark ns/op and allocs/op deltas and exits 1 when any
// benchmark present in both documents regressed by more than 15% ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark line's measurements. B/op and allocs/op are
// only meaningful when the run passed -benchmem (the Makefile target does).
// Metrics collects every custom b.ReportMetric unit (e.g. "samples/sec",
// "realtime") so domain throughput goals are recorded machine-readably
// alongside the standard columns.
type result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Iterations  int64              `json:"iterations"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Env        map[string]string `json:"env"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// maxNsRegression is the comparison gate: ns/op growth beyond this fraction
// fails the run.
const maxNsRegression = 0.15

// floor is one -floor requirement: the new document must report the named
// benchmark's custom metric at or above the bound, making absolute domain
// goals (a samples/sec target, a realtime ratio) CI-checkable alongside the
// relative ns/op gate.
type floor struct {
	bench string
	unit  string
	value float64
}

// floorFlags parses repeatable -floor Benchmark=unit:value arguments.
type floorFlags []floor

func (f *floorFlags) String() string {
	parts := make([]string, len(*f))
	for i, fl := range *f {
		parts[i] = fmt.Sprintf("%s=%s:%g", fl.bench, fl.unit, fl.value)
	}
	return strings.Join(parts, ",")
}

func (f *floorFlags) Set(s string) error {
	bench, rest, ok := strings.Cut(s, "=")
	if !ok || bench == "" {
		return fmt.Errorf("floor %q: want Benchmark=unit:value", s)
	}
	// The unit may itself contain colons-free slashes ("samples/sec"); the
	// value always follows the last colon.
	i := strings.LastIndexByte(rest, ':')
	if i <= 0 || i == len(rest)-1 {
		return fmt.Errorf("floor %q: want Benchmark=unit:value", s)
	}
	v, err := strconv.ParseFloat(rest[i+1:], 64)
	if err != nil {
		return fmt.Errorf("floor %q: bad value: %w", s, err)
	}
	*f = append(*f, floor{bench: bench, unit: rest[:i], value: v})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	compare := flag.Bool("compare", false, "compare two benchmark JSON documents (old new) instead of converting")
	var floors floorFlags
	flag.Var(&floors, "floor", "with -compare: require Benchmark=unit:value in the new document (repeatable)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("usage: benchjson -compare [-floor Benchmark=unit:value] old.json new.json")
		}
		if err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), floors); err != nil {
			log.Fatal(err)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, name := range args {
			f, err := os.Open(name)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	doc := document{
		Env: map[string]string{
			"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
			"go_version": runtime.Version(),
		},
		Benchmarks: map[string]result{},
	}
	if err := parse(in, &doc); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered(doc)); err != nil {
		log.Fatal(err)
	}
}

// parse consumes the go test stream, collecting benchmark lines and the
// goos/goarch/cpu header into doc.
func parse(r io.Reader, doc *document) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu", "pkg"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, res, err := parseLine(line)
		if err != nil {
			return fmt.Errorf("%q: %w", line, err)
		}
		if name == "" {
			continue
		}
		// With -count N the same benchmark appears N times; keep the
		// fastest run. ns/op measures the code's cost plus whatever else
		// the machine was doing, and only the noise term varies between
		// repetitions — the minimum is the standard low-variance estimator
		// and keeps single-spike load excursions from tripping the
		// comparison gate. The whole line is kept together so the custom
		// metrics stay coherent with the timing they were measured with.
		if prev, ok := doc.Benchmarks[name]; ok && prev.NsPerOp <= res.NsPerOp {
			continue
		}
		doc.Benchmarks[name] = res
	}
	return sc.Err()
}

// parseLine decodes one "BenchmarkName-8  123  456 ns/op  789 B/op ..."
// line. A Benchmark-prefixed line without the fixed name/iterations shape
// (e.g. a log line that happens to start with the word) is skipped by
// returning an empty name.
func parseLine(line string) (string, result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", result{}, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, nil
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := result{Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, fmt.Errorf("bad value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		case "MB/s":
			res.MBPerSec = v
		default:
			// Any other unit is a custom b.ReportMetric column.
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[fields[i+1]] = v
		}
	}
	return name, res, nil
}

// loadDoc reads one benchmark JSON document from disk.
func loadDoc(path string) (document, error) {
	var doc document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// runCompare diffs two benchmark documents, writing one delta line per
// benchmark present in both, and returns an error naming every benchmark
// whose ns/op regressed beyond the gate or whose custom metric missed a
// -floor bound. Benchmarks present on only one side are reported but never
// gate (renames must not fail CI silently in either direction).
func runCompare(w io.Writer, oldPath, newPath string, floors []floor) error {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldDoc.Benchmarks))
	for name := range oldDoc.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		ob := oldDoc.Benchmarks[name]
		nb, ok := newDoc.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-40s only in %s\n", name, oldPath)
			continue
		}
		dns := delta(ob.NsPerOp, nb.NsPerOp)
		dallocs := delta(ob.AllocsPerOp, nb.AllocsPerOp)
		mark := ""
		if dns > maxNsRegression {
			mark = "  REGRESSION"
			failures = append(failures, name)
		}
		fmt.Fprintf(w, "%-40s ns/op %12.1f -> %12.1f (%+6.1f%%)  allocs/op %8.0f -> %8.0f (%+6.1f%%)%s\n",
			name, ob.NsPerOp, nb.NsPerOp, 100*dns, ob.AllocsPerOp, nb.AllocsPerOp, 100*dallocs, mark)
		for _, unit := range sortedUnits(ob.Metrics) {
			nv, ok := nb.Metrics[unit]
			if !ok {
				continue
			}
			ov := ob.Metrics[unit]
			fmt.Fprintf(w, "%-40s %s %12.4g -> %12.4g (%+6.1f%%)\n",
				name, unit, ov, nv, 100*delta(ov, nv))
		}
	}
	for name := range newDoc.Benchmarks {
		if _, ok := oldDoc.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-40s only in %s\n", name, newPath)
		}
	}
	for _, f := range floors {
		nb, ok := newDoc.Benchmarks[f.bench]
		v, has := nb.Metrics[f.unit]
		switch {
		case !ok:
			fmt.Fprintf(w, "%-40s FLOOR: missing from %s\n", f.bench, newPath)
			failures = append(failures, f.bench)
		case !has:
			fmt.Fprintf(w, "%-40s FLOOR: reports no %q metric\n", f.bench, f.unit)
			failures = append(failures, f.bench)
		case v < f.value:
			fmt.Fprintf(w, "%-40s FLOOR: %s %.4g below required %.4g\n", f.bench, f.unit, v, f.value)
			failures = append(failures, f.bench)
		default:
			fmt.Fprintf(w, "%-40s floor ok: %s %.4g >= %.4g\n", f.bench, f.unit, v, f.value)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark gate failed (>%d%% ns/op regression or floor miss): %s",
			int(maxNsRegression*100), strings.Join(failures, ", "))
	}
	return nil
}

// sortedUnits returns the metric units in stable order.
func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// delta returns (new-old)/old, or 0 when the baseline is zero (nothing to
// regress against).
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

// ordered re-materialises the document with benchmark keys sorted so the
// JSON is byte-stable run to run (encoding/json sorts map keys, but being
// explicit keeps the contract obvious and survives a future switch to a
// slice representation).
func ordered(doc document) any {
	names := make([]string, 0, len(doc.Benchmarks))
	for name := range doc.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	benches := make(map[string]result, len(names))
	for _, name := range names {
		benches[name] = doc.Benchmarks[name]
	}
	return document{Env: doc.Env, Benchmarks: benches}
}
