// Command mimonet-dump merges flight-recorder dump files from both ends of
// a link into per-packet timelines: for every TX-assigned packet ID it
// renders the node records in link order (tx → sim → rx) with the stage-span
// waterfall, the per-subcarrier EVM table, the channel-estimate condition
// summary, and a worst-case verdict — the post-mortem view of one packet's
// life across processes.
//
// Usage:
//
//	mimonet-dump dumps/flight-tx-0000-end_of_run.json dumps/flight-rx-0000-crc_fail.json
//	mimonet-dump -packet 7 dumps/*.json
//	mimonet-dump -failed dumps/*.json
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

func main() {
	var (
		packet  = flag.Uint64("packet", 0, "render only this packet ID (0 = all)")
		failed  = flag.Bool("failed", false, "render only packets whose worst verdict is a failure")
		logJSON = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: mimonet-dump [flags] dump.json [dump.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, *logJSON, "dump")
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	dumps := make([]*flight.DumpFile, 0, flag.NArg())
	for _, path := range flag.Args() {
		df, err := flight.Load(path)
		if err != nil {
			logger.Error("dump load failed", slog.String("file", path), slog.String("err", err.Error()))
			os.Exit(1)
		}
		logger.Info("loaded dump", slog.String("file", path), slog.String(obs.KeyNode, df.Node),
			slog.String("reason", df.Reason), slog.Int("packets", len(df.Packets)))
		dumps = append(dumps, df)
	}

	timelines := flight.Merge(dumps...)
	rendered := 0
	for i := range timelines {
		t := &timelines[i]
		if *packet != 0 && t.PacketID != *packet {
			continue
		}
		if *failed && !isFailure(t.Verdict()) {
			continue
		}
		if rendered > 0 {
			fmt.Println()
		}
		flight.Render(os.Stdout, t)
		rendered++
	}
	if rendered == 0 {
		logger.Warn("no packets matched", slog.Int("timelines", len(timelines)))
		os.Exit(1)
	}
	fmt.Printf("\n%d packet(s) across %d dump(s)\n", rendered, len(dumps))
}

// isFailure mirrors Evidence.Failed for a timeline's worst verdict.
func isFailure(v string) bool {
	return v != flight.VerdictOK && v != flight.VerdictSent && v != flight.VerdictRestart
}
