// Command mimonet-ap is the multi-user MIMO access point: a long-running
// service that multiplexes many associated stations over one UDP radio
// link, sounding each of them on a fixed cadence, grouping compatible
// stations by CSI orthogonality, and zero-forcing the downlink toward every
// group member at once. It runs in four modes:
//
//	mimonet-ap -listen 127.0.0.1:9900
//	    Serve stations. With -metrics-listen the process exposes live
//	    /metrics (per-station PER, throughput, CSI age) and /debug/pprof.
//	    SIGINT drains: every station is sent a Bye before the process
//	    exits.
//
//	mimonet-ap -join 127.0.0.1:9900 -station-index 3
//	    Act as one station: contend for association with seeded backoff,
//	    answer sounding with quantized CSI, receive precoded MPDUs and
//	    block-acknowledge them until interrupted.
//
//	mimonet-ap -stations 8 -duration 2s
//	    In-process demo: spawn an AP plus N station clients over loopback,
//	    run for -duration, and print each station's counters.
//
//	mimonet-ap -soak -o SOAK_pr9.json
//	    Run the E25 multi-cell soak in-process (no sockets): ≥100 stations
//	    across static/fading/churn scenarios, writing a JSON artifact.
//	    Exits non-zero if multi-user throughput fails to beat the
//	    single-user TDMA baseline or the well-conditioned 2×2 check fails.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/apmac"
	"repro/internal/obs"
	"repro/internal/obs/stream"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:9900", "UDP listen address (serve mode)")
		ntx           = flag.Int("ntx", 4, "AP transmit antennas (spatial stream budget)")
		snr           = flag.Float64("snr", 25, "nominal link SNR in dB for the sounding analyzer")
		mpdu          = flag.Int("mpdu", 500, "downlink payload bytes per MPDU")
		tick          = flag.Duration("tick", 5*time.Millisecond, "scheduler tick interval")
		soundEvery    = flag.Int("sound-every", 20, "sound every station each N ticks")
		idleTimeout   = flag.Duration("idle-timeout", 3*time.Second, "evict stations silent for this long")
		drop          = flag.Float64("drop", 0, "seeded downlink loss probability (air model)")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics and /debug/pprof on this address (empty = telemetry off)")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		seed          = flag.Int64("seed", 1, "campaign seed (loss model, station channels, soak)")

		join     = flag.String("join", "", "station mode: associate with the AP at this address")
		staIndex = flag.Int("station-index", 0, "station mode: identity index (seeds nonce, channel, backoff)")

		stations = flag.Int("stations", 0, "demo mode: run an in-process AP plus this many loopback stations")
		duration = flag.Duration("duration", 2*time.Second, "demo mode: run time before draining")

		soak    = flag.Bool("soak", false, "run the E25 multi-cell soak and write a JSON artifact")
		cells   = flag.Int("cells", 0, "soak: independent cells (0 = tracked default)")
		perCell = flag.Int("stations-per-cell", 0, "soak: stations per cell (0 = tracked default)")
		slots   = flag.Int("slots", 0, "soak: simulated slots per cell (0 = tracked default)")
		workers = flag.Int("workers", 0, "soak: cell worker pool (0 = GOMAXPROCS; results identical at any value)")
		soakOut = flag.String("o", "SOAK_pr9.json", "soak: artifact path")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, *logJSON, "ap")
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *soak:
		cfg := apmac.DefaultSoakConfig()
		cfg.Seed = *seed
		cfg.Workers = *workers
		if *cells > 0 {
			cfg.Cells = *cells
		}
		if *perCell > 0 {
			cfg.StationsPerCell = *perCell
		}
		if *slots > 0 {
			cfg.Slots = *slots
		}
		cfg.NTX = *ntx
		cfg.SNRdB = *snr
		res, err := apmac.RunSoak(cfg)
		if err != nil {
			fatal("soak failed", err)
		}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal("soak marshal", err)
		}
		if err := os.WriteFile(*soakOut, append(blob, '\n'), 0o644); err != nil {
			fatal("soak write", err)
		}
		logger.Info("soak artifact written", slog.String("file", *soakOut),
			slog.Int("stations", res.Stations),
			slog.String("mu_mbps", fmt.Sprintf("%.2f", res.MUThroughputMbps)),
			slog.String("su_mbps", fmt.Sprintf("%.2f", res.SUBaselineMbps)),
			slog.Int("reassociations", res.Reassociations),
			slog.String("sched_hash", res.SchedHash))
		if res.MUThroughputMbps <= res.SUBaselineMbps {
			logger.Error("multi-user aggregate did not beat the single-user baseline")
			os.Exit(1)
		}
		if res.MU2x2SumRate <= res.SU2x2BestRate {
			logger.Error("well-conditioned 2x2 sum rate did not beat the single-user rate")
			os.Exit(1)
		}

	case *join != "":
		c, err := apmac.NewClient(apmac.ClientConfig{
			Addr:   *join,
			Index:  *staIndex,
			Seed:   *seed,
			NTX:    *ntx,
			Logger: logger,
		})
		if err != nil {
			fatal("station", err)
		}
		if err := c.Run(ctx); err != nil {
			fatal("station run", err)
		}
		st := c.Snapshot()
		logger.Info("station done", slog.Int("id", int(st.ID)),
			slog.Int("soundings", st.Soundings), slog.Int("data_frames", st.DataFrames),
			slog.Int("acks", st.AcksSent))

	case *stations > 0:
		runDemo(ctx, logger, demoConfig{
			n: *stations, ntx: *ntx, snr: *snr, mpdu: *mpdu,
			tick: *tick, soundEvery: *soundEvery, drop: *drop,
			seed: *seed, duration: *duration,
			metricsListen: *metricsListen,
		}, fatal)

	default:
		reg := obs.NewRegistry()
		obs.BuildInfo(reg, "ap")
		hub := stream.NewHub(stream.Config{Node: "ap", Registry: reg})
		ap, err := apmac.NewAP(apmac.APConfig{
			Listen:       *listen,
			NTX:          *ntx,
			SNRdB:        *snr,
			MPDUBytes:    *mpdu,
			TickInterval: *tick,
			SoundEvery:   *soundEvery,
			IdleTimeout:  *idleTimeout,
			DropProb:     *drop,
			Seed:         *seed,
			Logger:       logger,
			Registry:     reg,
			Events:       hub,
		})
		if err != nil {
			fatal("access point", err)
		}
		if *metricsListen != "" {
			srv := obs.NewServer(reg, nil, nil)
			srv.Handle("/stream", stream.Handler(hub))
			ctl := &stream.Control{
				ListStations: func() any { return ap.StationList() },
			}
			srv.Handle("/api/", ctl.Handler())
			go hub.Run(ctx)
			maddr, err := srv.Listen(*metricsListen)
			if err != nil {
				fatal("telemetry listen failed", err)
			}
			defer srv.Close()
			logger.Info("telemetry listening", slog.String("addr", "http://"+maddr.String()+"/metrics"))
		}
		logger.Info("access point listening", slog.String("addr", ap.Addr().String()),
			slog.Int("ntx", *ntx), slog.Duration("tick", *tick))
		if err := ap.Run(ctx); err != nil {
			fatal("access point failed", err)
		}
		logger.Info("access point drained", slog.Int("stations", ap.Stations()))
	}
}

type demoConfig struct {
	n, ntx, mpdu, soundEvery int
	snr, drop                float64
	tick                     time.Duration
	seed                     int64
	duration                 time.Duration
	metricsListen            string
}

// runDemo exercises the full live path in one process: an AP plus n station
// clients over loopback UDP, drained after the configured duration. With
// metricsListen set the demo serves the same telemetry surface as serve
// mode — /metrics, /stream and /api/stations — so mimonet-ctl can watch it.
func runDemo(ctx context.Context, logger *slog.Logger, d demoConfig, fatal func(string, error)) {
	reg := obs.NewRegistry()
	obs.BuildInfo(reg, "ap")
	hub := stream.NewHub(stream.Config{Node: "ap", Registry: reg, SnapshotPeriod: 250 * time.Millisecond})
	ap, err := apmac.NewAP(apmac.APConfig{
		Listen:       "127.0.0.1:0",
		NTX:          d.ntx,
		SNRdB:        d.snr,
		MPDUBytes:    d.mpdu,
		TickInterval: d.tick,
		SoundEvery:   d.soundEvery,
		DropProb:     d.drop,
		Seed:         d.seed,
		Logger:       logger,
		Registry:     reg,
		Events:       hub,
	})
	if err != nil {
		fatal("access point", err)
	}
	runCtx, cancel := context.WithTimeout(ctx, d.duration)
	defer cancel()
	if d.metricsListen != "" {
		srv := obs.NewServer(reg, nil, nil)
		srv.Handle("/stream", stream.Handler(hub))
		ctl := &stream.Control{ListStations: func() any { return ap.StationList() }}
		srv.Handle("/api/", ctl.Handler())
		go hub.Run(runCtx)
		maddr, err := srv.Listen(d.metricsListen)
		if err != nil {
			fatal("telemetry listen failed", err)
		}
		defer srv.Close()
		logger.Info("telemetry listening", slog.String("addr", "http://"+maddr.String()+"/metrics"))
	}
	apDone := make(chan error, 1)
	go func() { apDone <- ap.Run(runCtx) }()

	clients := make([]*apmac.Client, d.n)
	var wg sync.WaitGroup
	for i := range clients {
		c, err := apmac.NewClient(apmac.ClientConfig{
			Addr:  ap.Addr().String(),
			Index: i,
			Seed:  d.seed,
			NTX:   d.ntx,
		})
		if err != nil {
			fatal("station", err)
		}
		clients[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Run(runCtx); err != nil {
				logger.Warn("station exited", slog.String("err", err.Error()))
			}
		}()
	}
	wg.Wait()
	if err := <-apDone; err != nil {
		fatal("access point failed", err)
	}
	associated := 0
	for i, c := range clients {
		st := c.Snapshot()
		if st.Associated {
			associated++
		}
		fmt.Printf("station %2d: id=%-3d tries=%d soundings=%-3d data=%-4d acks=%-4d faults=%d\n",
			i, st.ID, st.AssocTries, st.Soundings, st.DataFrames, st.AcksSent, st.PayloadFault)
	}
	logger.Info("demo drained", slog.Int("associated", associated), slog.Int("stations", d.n))
	if associated < d.n {
		fatal("demo", fmt.Errorf("only %d/%d stations associated", associated, d.n))
	}
}
