// Command mimonet-sim runs the paper's reconstructed experiments (E1-E12,
// see DESIGN.md) and prints their tables. Operational events (telemetry
// endpoint, failures) go to stderr through the shared structured-logging
// seam; the tables themselves are the program's output and stay on stdout.
//
// Usage:
//
//	mimonet-sim -exp e5 -packets 500
//	mimonet-sim -exp all -quick
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	var (
		exp           = flag.String("exp", "all", "experiment id (e1..e12) or \"all\"")
		packets       = flag.Int("packets", 200, "Monte-Carlo packets/trials per sweep point")
		payload       = flag.Int("payload", 500, "MAC payload size in octets")
		seed          = flag.Int64("seed", 1, "random seed")
		quick         = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		scenario      = flag.String("scenario", "", "restrict fault-injection experiments (e22) to one named scenario")
		workers       = flag.Int("workers", 0, "Monte-Carlo worker goroutines for the sharded experiments (0 = GOMAXPROCS, 1 = serial); results are identical at any count")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics and /debug/pprof on this address while experiments run (empty = telemetry off)")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, *logJSON, "sim")
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		os.Exit(1)
	}

	var done *obs.Counter
	if *metricsListen != "" {
		reg := obs.NewRegistry()
		obs.BuildInfo(reg, "sim")
		done = reg.Counter("mimonet_sim_experiments_total", "experiments completed this run")
		srv := obs.NewServer(reg, nil, nil)
		addr, err := srv.Listen(*metricsListen)
		if err != nil {
			fatal("telemetry listen failed", err)
		}
		defer srv.Close()
		logger.Info("telemetry listening", slog.String("addr", "http://"+addr.String()+"/metrics"))
	}

	opt := sim.Options{Seed: *seed, Packets: *packets, PayloadLen: *payload, Quick: *quick, Scenario: *scenario, Workers: *workers}
	ids := []string{strings.ToLower(*exp)}
	if ids[0] == "all" {
		ids = sim.IDs()
	}
	for _, id := range ids {
		runner, err := sim.Lookup(id)
		if err != nil {
			fatal("unknown experiment", err)
		}
		table, err := runner(opt)
		if err != nil {
			fatal("experiment "+id+" failed", err)
		}
		if err := table.Render(os.Stdout); err != nil {
			fatal("table render failed", err)
		}
		done.Inc()
		fmt.Println()
	}
}
