// Command promcheck validates a Prometheus text exposition read from stdin
// (or files named as arguments): every line must be a well-formed comment,
// sample, or blank, every sample family must be typed, histogram families
// must expose their _bucket/_sum/_count series coherently, label names must
// be legal and outside the reserved __ namespace, and no two samples may
// share a name and label set (a duplicate series silently loses data on
// scrape — the last sample wins). With -require it additionally asserts
// that specific metric families are present, which is how CI checks a
// scraped /metrics endpoint actually carries the receiver's telemetry:
//
//	curl -s http://127.0.0.1:9751/metrics | promcheck -require mimonet_rx_snr_db,mimonet_rx_per
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("promcheck: ")
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	list := flag.Bool("list", false, "print the families found")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, name := range args {
			f, err := os.Open(name)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	// Two validation passes (syntax, then histogram semantics) need the
	// stream twice, so buffer it; expositions are small.
	input, err := io.ReadAll(in)
	if err != nil {
		log.Fatal(err)
	}

	families, err := obs.ValidateExposition(bytes.NewReader(input))
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.ValidateHistograms(bytes.NewReader(input)); err != nil {
		log.Fatal(err)
	}
	if err := obs.ValidateSeries(bytes.NewReader(input)); err != nil {
		log.Fatal(err)
	}
	if *list {
		names := make([]string, 0, len(families))
		for name := range families {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println(name)
		}
	}
	var missing []string
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := families[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("missing required families: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("exposition ok: %d families\n", len(families))
}
