// Command mimonet-gw is the session gateway: a long-running service that
// multiplexes many concurrent client transfer sessions over the UDP radio
// link, with credit-based flow control, idle/handshake timeouts,
// reconnect-with-resume, and fail-closed eviction. It runs in three modes:
//
//	mimonet-gw -listen 127.0.0.1:9800 -out received/
//	    Serve sessions; each completed transfer is written to a file named
//	    by its session ID. With -metrics-listen the process serves live
//	    /metrics and /debug/pprof; with -flight-dir, session failures
//	    trigger flight-recorder dumps. SIGINT drains: every open session
//	    fails closed with reason "shutdown" before the process exits.
//
//	mimonet-gw -send file.bin -addr 127.0.0.1:9800
//	    Act as a client: transfer the file through the gateway, surviving
//	    packet loss and gateway restarts via reconnect-with-resume.
//
//	mimonet-gw -soak -sessions 240 -o SOAK_pr6.json
//	    Run the chaos soak in-process: hundreds of concurrent sessions
//	    through seeded fault scenarios (drop, corrupt, delay, peer-kill,
//	    stall), writing a JSON robustness artifact. Exits non-zero if any
//	    session ended outside the defined terminal states, a payload
//	    failed verification, or goroutines leaked.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/stream"
	"repro/internal/session"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:9800", "UDP listen address (serve mode)")
		outDir        = flag.String("out", "", "write each session's reassembled payload to this directory (empty = discard)")
		idleTimeout   = flag.Duration("idle-timeout", 3*time.Second, "evict sessions silent for this long")
		maxSessions   = flag.Int("max-sessions", 1024, "concurrent session cap; excess handshakes are refused with reason \"busy\"")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics and /debug/pprof on this address (empty = telemetry off)")
		flightDir     = flag.String("flight-dir", "", "write flight-recorder dumps here on session failure (empty = recorder off)")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

		sendFile = flag.String("send", "", "client mode: transfer this file to -addr and exit")
		addr     = flag.String("addr", "127.0.0.1:9800", "gateway address (client mode)")
		sessID   = flag.Uint64("session", 0, "session ID (client mode; 0 = random)")

		soak     = flag.Bool("soak", false, "run the chaos soak and write a JSON artifact")
		sessions = flag.Int("sessions", 240, "soak: concurrent client sessions")
		bytesPer = flag.Int("bytes", 32*1024, "soak: payload bytes per session")
		parallel = flag.Int("parallel", 64, "soak: concurrently active clients")
		seed     = flag.Int64("seed", 1, "soak: campaign seed")
		soakOut  = flag.String("o", "SOAK_pr6.json", "soak: artifact path")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, *logJSON, "gw")
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *soak:
		res, err := session.RunSoak(ctx, session.SoakConfig{
			Sessions:  *sessions,
			Bytes:     *bytesPer,
			Parallel:  *parallel,
			Seed:      *seed,
			FlightDir: *flightDir,
			Logger:    logger,
		})
		if err != nil {
			fatal("soak failed", err)
		}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal("soak marshal", err)
		}
		if err := os.WriteFile(*soakOut, append(blob, '\n'), 0o644); err != nil {
			fatal("soak write", err)
		}
		logger.Info("soak artifact written", slog.String("file", *soakOut),
			slog.Int("completed", res.Completed), slog.Int("failed_clean", res.FailedClean),
			slog.Int("failed_dirty", res.FailedDirty), slog.Int("reconnects", res.Reconnects),
			slog.Bool("clean", res.Clean()))
		if !res.Clean() {
			logger.Error("soak not clean")
			os.Exit(1)
		}

	case *sendFile != "":
		data, err := os.ReadFile(*sendFile)
		if err != nil {
			fatal("read payload", err)
		}
		c, err := session.NewClient(session.ClientConfig{
			Addr:      *addr,
			SessionID: *sessID,
			Logger:    logger,
		})
		if err != nil {
			fatal("client", err)
		}
		start := time.Now() //mimonet:wallclock CLI entry point timing a real transfer
		if err := c.Send(ctx, data); err != nil {
			fatal("transfer failed", err)
		}
		logger.Info("transfer complete", slog.Uint64("session", c.SessionID()),
			slog.Int("bytes", len(data)), slog.Duration("took", time.Since(start)), //mimonet:wallclock

			slog.Int("reconnects", c.Reconnects))

	default:
		reg := obs.NewRegistry()
		obs.BuildInfo(reg, "gw")
		var rec *flight.Recorder
		if *flightDir != "" {
			rec = flight.New(flight.Config{Dir: *flightDir, Node: "gw", OnFailure: true})
		}
		hub := stream.NewHub(stream.Config{Node: "gw", Registry: reg})
		var newSink func(uint64) io.Writer
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal("out dir", err)
			}
			dir := *outDir
			newSink = func(id uint64) io.Writer {
				f, err := os.Create(filepath.Join(dir, fmt.Sprintf("session-%d.bin", id)))
				if err != nil {
					logger.Error("sink create failed", slog.Uint64("session", id), slog.String("err", err.Error()))
					return io.Discard
				}
				return f
			}
		}
		gw, err := session.NewGateway(session.Config{
			Listen:      *listen,
			Logger:      logger,
			Registry:    reg,
			Recorder:    rec,
			Events:      hub,
			IdleTimeout: *idleTimeout,
			MaxSessions: *maxSessions,
			NewSink:     newSink,
		})
		if err != nil {
			fatal("gateway", err)
		}
		if *metricsListen != "" {
			srv := obs.NewServer(reg, nil, nil)
			if rec != nil {
				srv.SetDumper(rec.Dump)
			}
			srv.Handle("/stream", stream.Handler(hub))
			// One advancing source shared by every control-API transfer: a
			// fresh client per request would fall back to the fixed-seed
			// default and draw the same session ID each time, colliding
			// with the previous transfer's tombstone.
			var ctlMu sync.Mutex
			ctlRand := rand.New(rand.NewSource(1)) //mimonet:globalrand-ok seeded once per process, advanced per transfer
			ctl := &stream.Control{
				ListSessions: func() any { return gw.Sessions() },
				StartTransfer: func(n int) (any, error) {
					ctlMu.Lock()
					id := uint64(0)
					for id == 0 {
						id = ctlRand.Uint64()
					}
					ctlMu.Unlock()
					c, err := session.NewClient(session.ClientConfig{
						Addr:      gw.Addr().String(),
						SessionID: id,
						Logger:    logger,
					})
					if err != nil {
						return nil, err
					}
					payload := make([]byte, n)
					for i := range payload {
						payload[i] = byte(i)
					}
					go func() {
						if err := c.Send(ctx, payload); err != nil {
							logger.Warn("control transfer failed",
								slog.Uint64("session", c.SessionID()), slog.String("err", err.Error()))
						}
					}()
					return map[string]any{"session": c.SessionID(), "bytes": n}, nil
				},
			}
			if rec != nil {
				ctl.FlightDump = rec.Dump
			}
			srv.Handle("/api/", ctl.Handler())
			go hub.Run(ctx)
			maddr, err := srv.Listen(*metricsListen)
			if err != nil {
				fatal("telemetry listen failed", err)
			}
			defer srv.Close()
			logger.Info("telemetry listening", slog.String("addr", "http://"+maddr.String()+"/metrics"))
		}
		logger.Info("gateway listening", slog.String("addr", gw.Addr().String()),
			slog.Duration("idle_timeout", *idleTimeout), slog.Int("max_sessions", *maxSessions))
		if err := gw.Run(ctx); err != nil {
			fatal("gateway failed", err)
		}
		st := gw.Stats()
		logger.Info("gateway drained", slog.Int64("opened", st.Opened),
			slog.Int64("completed", st.Completed), slog.Int64("failed", st.Failed),
			slog.Int64("reconnects", st.Reconnects))
	}
}
